"""Tests for the crash-safe service layer: journal, recovery, drain,
admission control, and retention.

Crash states are fabricated directly (journal rows + staging files on
disk, then a fresh :class:`SweepService` over them) so every recovery
variant is deterministic; the subprocess SIGKILL suite lives in
``test_crash_recovery.py``.
"""

import json
import threading
import time

import pytest

from repro.dse import clear_memo
from repro.dse.engine import run_sweep
from repro.dse.spec import SweepSpec
from repro.dse.store import ResultStore, StoreWarning
from repro.serve import (
    DrainingError,
    JobJournal,
    JournalWarning,
    QueueFullError,
    ServeClient,
    ServeError,
    SweepServer,
    SweepService,
    default_journal_path,
    serve,
)
from repro.serve.jobs import DONE, QUEUED, RUNNING, Job
from repro.serve.journal import JobJournal as _JournalDirect

GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}

SMALL = {
    "grid": {
        "workloads": ["RNN"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}

# 8 points; hash-range chunking at width 4 yields several non-empty
# chunks, which the fleet-recovery tests need.
WIDE = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["tpu", "bpvec"],
        "memories": ["ddr4", "hbm2"],
    }
}


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "store.jsonl", tmp_path / "store.jsonl.journal"


def _wait_done(job, timeout=15.0):
    assert job.wait(timeout), f"job {job.id} stuck in {job.state}"
    # Terminal journal writes land just after waiters wake; settle.
    time.sleep(0.05)
    return job


def _blocked_service(store, jpath, **kwargs):
    """A service whose pool runner blocks until released (or cancelled).

    Returns ``(service, release, started)``; the runner stays
    responsive to job cancellation so fast shutdowns never stall the
    pool-join timeout.
    """
    kwargs.setdefault("job_workers", 1)
    service = SweepService(store=store, journal=jpath, **kwargs)
    release = threading.Event()
    started = threading.Event()

    def blocking_runner(job):
        started.set()
        while not release.is_set() and not job.cancel_requested():
            time.sleep(0.01)
        job.finish("cancelled" if job.cancel_requested() else DONE)

    service.jobs.runner = blocking_runner
    return service, release, started


class TestJournalSemantics:
    def test_default_journal_path_colocates(self, tmp_path):
        assert default_journal_path(tmp_path / "s.sqlite") == (
            tmp_path / "s.sqlite.journal"
        )

    def test_submit_rows_replay_in_priority_fifo_order(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        spec = SweepSpec.from_dict(GRID)
        submitted = []
        for priority in (10, 5, 10, 1, 5):
            job = Job(spec=spec, priority=priority)
            journal.record_submit(job)
            submitted.append((priority, job.id))
        order = [(r["priority"], r["id"]) for r in journal.jobs()]
        expected = [
            submitted[k]
            for k in sorted(
                range(len(submitted)), key=lambda k: (submitted[k][0], k)
            )
        ]
        assert order == expected
        journal.close()

    def test_resubmit_preserves_seq(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        spec = SweepSpec.from_dict(GRID)
        first = Job(spec=spec)
        second = Job(spec=spec)
        journal.record_submit(first)
        journal.record_submit(second)
        journal.record_submit(first)  # recovery re-journals in place
        rows = {r["id"]: r["seq"] for r in journal.jobs()}
        assert rows[first.id] < rows[second.id]
        journal.close()

    def test_transitions_journal_through_the_job(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        assert journal.jobs()[0]["state"] == RUNNING
        job.finish(DONE)
        row = journal.jobs()[0]
        assert row["state"] == DONE
        assert row["finished_at"] is not None
        journal.close()

    def test_cancel_flag_is_journaled_without_a_state_change(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        job.cancel()  # running: only the flag moves
        row = journal.jobs()[0]
        assert row["state"] == RUNNING
        assert row["cancel_requested"] == 1
        journal.close()

    def test_suspend_freezes_the_journal(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        job.journal = journal
        journal.record_submit(job)
        journal.suspend()
        job.mark_running()
        job.finish(DONE)
        assert journal.jobs()[0]["state"] == QUEUED  # pre-suspension state
        journal.close()

    def test_clean_shutdown_marker_is_consumed_once(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        journal.mark_clean_shutdown("drain")
        assert journal.consume_clean_shutdown()["mode"] == "drain"
        assert journal.consume_clean_shutdown() is None
        journal.close()

    def test_evict_drops_jobs_leases_and_counts(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        journal.record_submit(job)
        journal.record_lease(job.id, 0, "completed", 1)
        journal.evict([job.id])
        assert journal.jobs() == []
        assert journal.leases(job.id) == {}
        assert journal.summary()["evicted_total"] == 1
        journal.close()

    def test_transition_write_failure_warns_not_raises(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        job.journal = journal
        journal.record_submit(job)
        journal._db.close()  # simulate a dying disk/database
        with pytest.warns(JournalWarning):
            job.mark_running()
        assert job.state == RUNNING  # the job itself is unaffected

    def test_submit_write_failure_is_critical(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        journal._db.close()
        with pytest.raises(OSError):
            journal.record_submit(Job(spec=SweepSpec.from_dict(GRID)))

    def test_summary_counts_jobs_and_chunks(self, paths):
        _, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        journal.record_submit(job)
        journal.record_lease("abc", 0, "pending", 2)
        summary = journal.summary()
        assert summary["jobs"] == {"queued": 1, "total": 1}
        assert summary["chunks"] == {"pending": 1, "total": 1}
        assert summary["clean_shutdown"] is None
        journal.close()


class TestRecovery:
    def test_fresh_journal_recovers_nothing(self, paths):
        store, jpath = paths
        service = SweepService(store=store, journal=jpath)
        info = service.recovery_info
        assert info["prior_shutdown"] is None
        assert info["recovered_queued"] == 0
        service.close()

    def test_queued_jobs_reenqueue_in_priority_fifo_order(self, paths):
        store, jpath = paths
        journal = JobJournal(jpath)
        spec = SweepSpec.from_dict(SMALL)
        ids = []
        for priority in (10, 1, 5):
            job = Job(spec=spec, priority=priority)
            journal.record_submit(job)
            ids.append((priority, job.id))
        journal.close()

        service = SweepService(store=store, journal=jpath, job_workers=1)
        assert service.recovery_info["recovered_queued"] == 3
        assert service.recovery_info["prior_shutdown"] == "crash"
        jobs = {job_id: service.jobs.get(job_id) for _, job_id in ids}
        for job in jobs.values():
            _wait_done(job)
        by_finish = sorted(ids, key=lambda t: jobs[t[1]].finished_at)
        assert [priority for priority, _ in by_finish] == [1, 5, 10]
        service.close()

    def test_running_job_resumes_without_recomputing(self, paths):
        store, jpath = paths
        spec = SweepSpec.from_dict(GRID)
        local = run_sweep(spec, vectorize=False)
        prefix = local.records[:1]

        journal = JobJournal(jpath)
        job = Job(spec=spec, vectorize=False)
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        staging = ResultStore(
            store.with_name(f"{store.name}.job-{job.id}.staging")
        )
        staging.append(prefix)
        journal.close()

        clear_memo()
        service = SweepService(store=store, journal=jpath)
        info = service.recovery_info
        assert info["recovered_running"] == 1
        assert info["staging_merged"] == 1
        assert info["staging_merged_records"] == 1
        recovered = service.jobs.get(job.id)
        _wait_done(recovered)
        assert recovered.state == DONE
        # The staged prefix resolved through the store warm path; only
        # the remainder was evaluated.  Nothing ran twice.
        assert recovered.counts["store"] == 1
        assert recovered.counts["evaluated"] == len(spec) - 1
        assert ResultStore(store).load() == {
            r["hash"]: r for r in local.records
        }
        assert not list(store.parent.glob("*.staging"))
        service.close()

    def test_cancel_requested_job_recovers_cancelled(self, paths):
        store, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        job.cancel()
        journal.close()

        service = SweepService(store=store, journal=jpath)
        assert service.recovery_info["cancelled_on_recovery"] == 1
        assert service.jobs.get(job.id).state == "cancelled"
        service.close()

    def test_terminal_jobs_recover_for_visibility(self, paths):
        store, jpath = paths
        journal = JobJournal(jpath)
        job = Job(spec=SweepSpec.from_dict(GRID))
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        job.finish(DONE)
        journal.close()

        service = SweepService(store=store, journal=jpath)
        assert service.recovery_info["recovered_terminal"] == 1
        recovered = service.jobs.get(job.id)
        assert recovered.state == DONE
        assert recovered.status()["finished_at"] is not None
        service.close()

    def test_orphan_staging_swept_with_warning(self, paths):
        """Regression: stale staging files from a killed server are
        merged when journaled as running, deleted with a StoreWarning
        otherwise."""
        store, jpath = paths
        spec = SweepSpec.from_dict(SMALL)
        records = run_sweep(spec, vectorize=False).records
        orphan = ResultStore(store.with_name(f"{store.name}.job-feed.staging"))
        orphan.append(records)
        with pytest.warns(StoreWarning, match="orphaned staging"):
            service = SweepService(store=store, journal=jpath)
        assert service.recovery_info["staging_orphans_deleted"] == 1
        assert not orphan.path.exists()
        # Orphaned records were NOT merged (their job never journaled).
        assert not store.exists()
        service.close()

    def test_clean_shutdown_mode_is_reported(self, paths):
        store, jpath = paths
        service = SweepService(store=store, journal=jpath)
        job = service.submit({"spec": SMALL})
        _wait_done(job)
        service.close()  # fast path

        second = SweepService(store=store, journal=jpath)
        assert second.recovery_info["prior_shutdown"] == "fast"
        second.close()


class TestFleetRecovery:
    def _fabricate(self, store, jpath, chunks=4):
        """A fleet job journaled mid-flight: 1 chunk done, 1 leased."""
        from repro.serve.fleet import FleetJob

        spec = SweepSpec.from_dict(WIDE)
        journal = JobJournal(jpath)
        job = FleetJob(spec=spec, chunks=chunks)
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        assert job.chunk_count >= 2
        done_chunk = job.chunk_states()[0][0]
        leased_chunk = job.chunk_states()[1][0]
        # Evaluate + ingest the first chunk's records like a worker
        # would, then journal its completion and a still-held lease on
        # the second.
        chunk_specs = dict(spec.chunks(job.chunk_partition))
        ResultStore(store).append(
            run_sweep(chunk_specs[done_chunk], vectorize=False).records
        )
        journal.record_lease(job.id, done_chunk, "completed", 1)
        journal.record_lease(job.id, leased_chunk, "leased", 1)
        journal.close()
        return job, spec

    def test_lease_table_rebuilds_with_leased_requeued(self, paths):
        store, jpath = paths
        job, _ = self._fabricate(store, jpath)

        service = SweepService(store=store, journal=jpath)
        info = service.recovery_info
        assert info["recovered_fleet"] == 1
        assert info["requeued_chunks"] == 1
        recovered = service.jobs.get(job.id)
        assert recovered.state == RUNNING
        counts = recovered.chunk_counts()
        assert counts["completed"] == 1
        assert counts["leased"] == 0
        assert counts["pending"] == counts["total"] - 1
        service.close()

    def test_recovered_fleet_job_drains_to_local_result(self, paths):
        store, jpath = paths
        job, spec = self._fabricate(store, jpath)
        clear_memo()
        local = {
            r["hash"]: r for r in run_sweep(spec, vectorize=False).records
        }

        clear_memo()
        service = SweepService(store=store, journal=jpath)
        recovered = service.jobs.get(job.id)
        worker_id = service.fleet.register(name="t")["worker"]
        while True:
            response = service.fleet.lease(worker_id)
            lease = response.get("lease")
            if lease is None:
                break
            chunk_spec = SweepSpec.from_dict(lease["spec"])
            service.ingest(run_sweep(chunk_spec, vectorize=False).records)
            service.fleet.ack(worker_id, lease["job"], lease["chunk"])
        _wait_done(recovered)
        assert recovered.state == DONE
        assert ResultStore(store).load() == local
        service.close()

    def test_fully_acked_fleet_job_recovers_done(self, paths):
        store, jpath = paths
        from repro.serve.fleet import FleetJob

        spec = SweepSpec.from_dict(SMALL)
        journal = JobJournal(jpath)
        job = FleetJob(spec=spec, chunks=2)
        journal.record_submit(job)
        for index, _, _ in job.chunk_states():
            journal.record_lease(job.id, index, "completed", 1)
        journal.close()

        service = SweepService(store=store, journal=jpath)
        assert service.jobs.get(job.id).state == DONE
        service.close()


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self, paths):
        store, jpath = paths
        service, release, started = _blocked_service(
            store, jpath, max_queue_depth=1
        )
        service.submit({"spec": SMALL})  # runs (blocked)
        assert started.wait(5)
        service.submit({"spec": SMALL})  # queued: at the bound
        with pytest.raises(QueueFullError) as excinfo:
            service.submit({"spec": SMALL})
        assert excinfo.value.retry_after > 0
        assert service.rejected_jobs == 1
        assert service.stats()["admission"]["rejected"] == 1
        release.set()
        service.close()

    def test_http_429_carries_retry_after_and_client_retries(self, paths):
        store, jpath = paths
        service, release, started = _blocked_service(
            store, jpath, max_queue_depth=1
        )
        server = SweepServer(service)
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02),
            daemon=True,
        )
        thread.start()
        try:
            client = ServeClient(server.url, retries=0, backoff=0.05)
            client.submit_job(SMALL)
            assert started.wait(5)
            client.submit_job(SMALL)
            with pytest.raises(ServeError) as excinfo:
                client.submit_job(SMALL)
            assert excinfo.value.code == 429
            assert excinfo.value.retry_after > 0
            # With retries, the client waits out the 429: release the
            # pool shortly before its retry lands.
            retrier = ServeClient(server.url, retries=4, backoff=0.05)
            threading.Timer(0.3, release.set).start()
            status = retrier.submit_job(SMALL)
            assert status["state"] in ("queued", "running")
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()

    def test_fleet_jobs_are_exempt_from_queue_depth(self, paths):
        store, jpath = paths
        service, release, started = _blocked_service(
            store, jpath, max_queue_depth=1
        )
        service.submit({"spec": SMALL})
        assert started.wait(5)
        service.submit({"spec": SMALL})  # at the bound
        job = service.submit({"spec": GRID, "fleet": True})  # still admitted
        assert job.kind == "fleet"
        release.set()
        service.close()


class TestDrainAndShutdown:
    def test_drain_waits_for_running_jobs(self, paths):
        store, jpath = paths
        service, release, started = _blocked_service(store, jpath)
        job = service.submit({"spec": GRID})
        assert started.wait(5)
        threading.Timer(0.3, release.set).start()
        outcome = service.drain(timeout=15.0)
        assert job.state == DONE
        assert outcome["drained"] == 1
        assert outcome["cancelled"] == 0
        with pytest.raises(DrainingError):
            service.submit({"spec": SMALL})

        second = SweepService(store=store, journal=jpath)
        assert second.recovery_info["prior_shutdown"] == "drain"
        second.close()

    def test_fast_close_keeps_resumable_states(self, paths):
        store, jpath = paths
        service, release, started = _blocked_service(store, jpath)
        running = service.submit({"spec": SMALL})
        assert started.wait(5)
        queued = service.submit({"spec": GRID})
        service.close()  # fast: cancels live jobs, suspends the journal
        release.set()

        journal = JobJournal(jpath)
        states = {r["id"]: r["state"] for r in journal.jobs()}
        journal.close()
        assert states[running.id] == RUNNING  # pre-shutdown states kept
        assert states[queued.id] == QUEUED

        second = SweepService(store=store, journal=jpath)
        info = second.recovery_info
        assert info["prior_shutdown"] == "fast"
        assert info["recovered_running"] == 1
        assert info["recovered_queued"] == 1
        for job_id in (running.id, queued.id):
            _wait_done(second.jobs.get(job_id))
        second.close()

    def test_http_drain_shutdown_stops_admission_and_exits(self, paths):
        store, jpath = paths
        exited = threading.Event()
        codes = []
        servers = []

        def run():
            codes.append(
                serve(
                    store=store,
                    journal=jpath,
                    drain_timeout=10.0,
                    announce=lambda _msg: None,
                    ready=servers.append,
                )
            )
            exited.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.time() + 5
        while not servers and time.time() < deadline:
            time.sleep(0.01)
        client = ServeClient(servers[0].url)
        client.submit_job(GRID)
        assert client.shutdown(drain=True)["status"] == "draining"
        assert exited.wait(15)
        assert codes == [0]
        thread.join(timeout=5)

        journal = JobJournal(jpath)
        summary = journal.summary()
        journal.close()
        assert summary["clean_shutdown"]["mode"] == "drain"
        assert summary["jobs"].get("done", 0) >= 1


class TestRetention:
    def test_retention_count_evicts_oldest_terminal(self, paths):
        store, jpath = paths
        service = SweepService(store=store, journal=jpath, job_retention=2)
        jobs = [service.submit({"spec": SMALL}) for _ in range(3)]
        for job in jobs:
            _wait_done(job)
        service.submit({"spec": SMALL})  # the submit tick evicts
        counts = service.jobs.counts()
        assert counts["total"] <= 4
        assert service.evicted_jobs >= 1
        journal = JobJournal(jpath)
        assert journal.summary()["evicted_total"] >= 1
        journal.close()
        service.close()

    def test_job_ttl_evicts_old_terminal_jobs(self, paths):
        store, jpath = paths
        service = SweepService(store=store, journal=jpath, job_ttl=3600.0)
        job = service.submit({"spec": SMALL})
        _wait_done(job)
        service.stats()
        assert service.jobs.get(job.id) is not None  # fresh: kept
        with job._changed:
            job.finished_at = time.time() - 7200.0
        service.stats()
        assert service.jobs.get(job.id) is None
        assert service.evicted_jobs == 1
        service.close()

    def test_live_jobs_are_never_evicted(self, paths):
        store, jpath = paths
        service, release, started = _blocked_service(
            store, jpath, job_retention=1, job_ttl=0.001
        )
        job = service.submit({"spec": SMALL})
        assert started.wait(5)
        service.stats()
        assert service.jobs.get(job.id) is not None
        release.set()
        service.close()


class TestInspectJournal:
    def test_cli_inspect_journal_prints_summary(self, paths, capsys):
        from repro.cli import main

        store, jpath = paths
        service = SweepService(store=store, journal=jpath)
        _wait_done(service.submit({"spec": SMALL}))
        service.close()

        assert (
            main(
                ["serve", "--store", str(store), "--inspect-journal"]
            )
            or 0
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"]["done"] == 1
        assert summary["clean_shutdown"]["mode"] == "fast"
        assert summary["path"] == str(jpath)

    def test_inspect_journal_requires_a_journal(self, paths):
        from repro.cli import main

        with pytest.raises(SystemExit, match="inspect-journal"):
            main(["serve", "--inspect-journal"])

    def test_journal_and_no_journal_conflict(self, paths):
        from repro.cli import main

        store, jpath = paths
        with pytest.raises(SystemExit, match="exclusive"):
            main(
                [
                    "serve",
                    "--store",
                    str(store),
                    "--journal",
                    str(jpath),
                    "--no-journal",
                    "--inspect-journal",
                ]
            )


def test_journal_reexport_is_the_journal_module():
    assert JobJournal is _JournalDirect
