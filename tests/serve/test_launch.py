"""Tests for dse-launch shard orchestration: command generation, local
spawning + auto-merge, failure reporting, and posting to a server."""

import json
import threading

import pytest

from repro.cli import main
from repro.dse import SweepSpec, clear_memo, open_store, run_sweep
from repro.serve import (
    LaunchResult,
    SweepServer,
    SweepService,
    launch,
    render_commands,
    shard_commands,
    shard_store_path,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _write_spec(tmp_path) -> tuple:
    spec = SweepSpec.grid(
        workloads=("RNN",), platforms=("bpvec", "tpu"), memories=("ddr4", "hbm2")
    )
    path = tmp_path / "sweep.spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    return spec, path


class TestShardCommands:
    def test_commands_cover_every_shard(self, tmp_path):
        commands = shard_commands("spec.json", 3, tmp_path / "dest.jsonl")
        assert len(commands) == 3
        for index, command in enumerate(commands):
            assert command[0] == "repro"
            assert f"{index}/3" in command
            assert str(shard_store_path(tmp_path / "dest.jsonl", index)) in command

    def test_no_vectorize_and_workers_propagate(self, tmp_path):
        (command,) = shard_commands(
            "spec.json", 1, tmp_path / "d.jsonl", workers=4, vectorize=False
        )
        assert "--no-vectorize" in command
        assert command[command.index("--workers") + 1] == "4"

    def test_render_commands_is_shell_quoted(self, tmp_path):
        rendered = render_commands(
            shard_commands("my spec.json", 2, tmp_path / "dest.jsonl")
        )
        lines = rendered.splitlines()
        assert len(lines) == 2
        assert "'my spec.json'" in lines[0]


class TestLaunch:
    def test_launch_merges_shards_bit_identically(self, tmp_path):
        spec, spec_path = _write_spec(tmp_path)
        local = run_sweep(spec)

        dest = tmp_path / "merged.sqlite"
        result = launch(spec_path, 2, dest, workers=1)
        assert isinstance(result, LaunchResult)
        assert result.shards == 2
        assert result.merged_records == len(spec)
        assert result.posted is None

        merged = open_store(dest)
        by_hash = {r["hash"]: r for r in merged.load().values()}
        assert [by_hash[p.config_hash()] for p in spec.points] == local.records
        # Shard stores are cleaned up after a successful merge.
        assert not any(path.exists() for path in result.shard_paths)

    def test_keep_shards_preserves_the_per_shard_stores(self, tmp_path):
        spec, spec_path = _write_spec(tmp_path)
        result = launch(spec_path, 2, tmp_path / "merged.jsonl", keep_shards=True)
        existing = [path for path in result.shard_paths if path.exists()]
        assert existing  # at least one shard owned points and kept its store
        assert sum(len(open_store(p)) for p in existing) == len(spec)

    def test_failed_shard_raises_with_detail(self, tmp_path):
        bad_spec = tmp_path / "bad.json"
        bad_spec.write_text(json.dumps({"grid": {"workloads": ["VGG-99"]}}))
        with pytest.raises(RuntimeError, match="shard .* exited"):
            launch(bad_spec, 2, tmp_path / "merged.jsonl")

    def test_invalid_shard_count_rejected(self, tmp_path):
        _, spec_path = _write_spec(tmp_path)
        with pytest.raises(ValueError):
            launch(spec_path, 0, tmp_path / "merged.jsonl")

    def test_post_uploads_merged_records_to_a_server(
        self, tmp_path, monkeypatch
    ):
        import importlib

        # The package re-exports launch() under the module's own name,
        # so reach the module itself through importlib.
        launch_module = importlib.import_module("repro.serve.launch")

        # A tiny chunk size forces the multi-request upload path a
        # giant merged store would take against the server's body cap.
        monkeypatch.setattr(launch_module, "POST_CHUNK_RECORDS", 3)
        server = SweepServer(SweepService(store=tmp_path / "served.sqlite"))
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
        )
        thread.start()
        try:
            spec, spec_path = _write_spec(tmp_path)
            # Pre-existing destination records are NOT re-posted; only
            # this launch's shard delta goes up.
            dest = open_store(tmp_path / "merged.jsonl")
            dest.append([{"hash": "old" * 16, "version": 1, "metrics": {}}])
            result = launch(spec_path, 2, dest, post=server.url)
            assert result.merged_records == len(spec) + 1
            assert result.posted == len(spec)  # 4 records -> 2 requests
            assert len(server.service.store) == len(spec)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestLaunchFleet:
    def test_fleet_launch_matches_local_run(self, tmp_path):
        from repro.serve import launch_fleet

        spec, _ = _write_spec(tmp_path)
        local = run_sweep(spec)
        clear_memo()  # worker subprocesses recompute from scratch anyway

        dest = tmp_path / "fleet.sqlite"
        result = launch_fleet(spec, workers=2, store=dest, timeout=120)
        assert result.points == len(spec)
        assert result.chunks["completed"] == result.chunks["total"]
        assert result.store_path == dest
        assert "pulled by 2 workers" in result.summary()

        merged = open_store(dest)
        by_hash = {r["hash"]: r for r in merged.load().values()}
        assert [by_hash[p.config_hash()] for p in spec.points] == local.records

    def test_fleet_launch_validation(self, tmp_path):
        from repro.serve import launch_fleet

        spec, _ = _write_spec(tmp_path)
        with pytest.raises(ValueError, match="worker count"):
            launch_fleet(spec, workers=0, store=tmp_path / "f.jsonl")
        with pytest.raises(ValueError, match="no points"):
            launch_fleet(
                SweepSpec(points=()), workers=1, store=tmp_path / "f.jsonl"
            )

    def test_fleet_launch_timeout_raises(self, tmp_path):
        from repro.serve import launch_fleet

        spec, _ = _write_spec(tmp_path)
        with pytest.raises(RuntimeError, match="timed out"):
            launch_fleet(
                spec, workers=1, store=tmp_path / "f.jsonl", timeout=0.01
            )


class TestCliLaunch:
    def _run(self, capsys, *argv):
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_print_cmds_emits_runnable_lines_and_merge_hint(
        self, capsys, tmp_path
    ):
        dest = tmp_path / "merged.jsonl"
        out = self._run(
            capsys,
            "dse-launch",
            "--workload",
            "RNN",
            "--shards",
            "3",
            "--store",
            str(dest),
            "--print-cmds",
        )
        lines = out.strip().splitlines()
        commands = [line for line in lines if not line.startswith("#")]
        assert len(commands) == 3
        assert all(line.startswith("repro dse --spec") for line in commands)
        assert lines[-1].startswith("# then: repro dse-merge")
        # The printed spec file exists and parses back to the sweep.
        spec_file = dest.with_name(dest.name + ".spec.json")
        rebuilt = SweepSpec.from_dict(json.loads(spec_file.read_text()))
        assert len(rebuilt) == 6

    def test_cli_launch_end_to_end_warms_a_store(self, capsys, tmp_path):
        dest = tmp_path / "merged.jsonl"
        out = self._run(
            capsys,
            "dse-launch",
            "--workload",
            "RNN",
            "--platform",
            "bpvec",
            "--shards",
            "2",
            "--store",
            str(dest),
        )
        assert "merged 2 records" in out
        # The temp spec file is cleaned up after spawning.
        assert not dest.with_name(dest.name + ".spec.json").exists()
        clear_memo()
        warm = self._run(
            capsys,
            "dse",
            "--workload",
            "RNN",
            "--platform",
            "bpvec",
            "--store",
            str(dest),
        )
        assert "0 evaluated" in warm and "2 store hits" in warm

    def test_cli_fleet_launch_warms_a_store(self, capsys, tmp_path):
        dest = tmp_path / "fleet.sqlite"
        out = self._run(
            capsys,
            "dse-launch",
            "--workload",
            "RNN",
            "--platform",
            "bpvec",
            "--fleet",
            "1",
            "--chunks",
            "2",
            "--store",
            str(dest),
        )
        assert "pulled by 1 workers" in out
        assert len(open_store(dest)) == 2

    def test_cli_fleet_rejects_print_cmds(self, tmp_path):
        with pytest.raises(SystemExit, match="incompatible"):
            main(
                [
                    "dse-launch",
                    "--workload",
                    "RNN",
                    "--fleet",
                    "1",
                    "--store",
                    str(tmp_path / "f.jsonl"),
                    "--print-cmds",
                ]
            )

    def test_print_cmds_rejects_zero_shards(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "dse-launch",
                    "--workload",
                    "RNN",
                    "--shards",
                    "0",
                    "--store",
                    str(tmp_path / "m.jsonl"),
                    "--print-cmds",
                ]
            )
        assert exc.value.code != 0

    def test_failed_launch_cleans_up_the_temp_spec_file(self, tmp_path):
        dest = tmp_path / "merged.jsonl"
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "dse-launch",
                    "--workload",
                    "RNN",
                    "--platform",
                    "bpvec",
                    "--memory",
                    "ddr4",
                    "--shards",
                    "1",
                    "--store",
                    str(dest),
                    "--post",
                    "http://127.0.0.1:1",  # nothing listens on port 1
                ]
            )
        assert exc.value.code != 0
        assert not dest.with_name(dest.name + ".spec.json").exists()

    def test_empty_sweep_exits_nonzero(self, tmp_path):
        spec = tmp_path / "empty.json"
        spec.write_text(json.dumps({"points": []}))
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "dse-launch",
                    "--spec",
                    str(spec),
                    "--store",
                    str(tmp_path / "d.jsonl"),
                ]
            )
        assert exc.value.code != 0


class TestFailFast:
    """A poisoned shard must surface in seconds, not after the
    surviving siblings burn to completion."""

    @pytest.fixture
    def launch_module(self):
        import importlib

        return importlib.import_module("repro.serve.launch")

    def _fake_commands(self, monkeypatch, launch_module, commands):
        monkeypatch.setattr(
            launch_module,
            "shard_commands",
            lambda *args, **kwargs: [list(c) for c in commands],
        )

    def test_poisoned_shard_terminates_siblings_promptly(
        self, tmp_path, monkeypatch, launch_module
    ):
        import sys
        import time

        crash = [
            sys.executable,
            "-c",
            "import sys; sys.stderr.write('poisoned shard\\n'); sys.exit(3)",
        ]
        sleeper = [sys.executable, "-c", "import time; time.sleep(60)"]
        self._fake_commands(
            monkeypatch, launch_module, [crash, sleeper, sleeper]
        )
        _, spec_path = _write_spec(tmp_path)
        dest = tmp_path / "merged.jsonl"
        # A partial store a crashed-over launch left behind must survive
        # the failure (a re-launch resumes warm from it).
        partial = shard_store_path(dest, 1)
        partial.write_text("")
        start = time.monotonic()
        with pytest.raises(RuntimeError) as failure:
            launch(spec_path, 3, dest)
        elapsed = time.monotonic() - start
        # Far less than the sleepers' 60s: they were terminated, and
        # being terminated by us they are not reported as failures.
        assert elapsed < 30
        assert "shard 0/3 exited 3: poisoned shard" in str(failure.value)
        assert "shard 1/3" not in str(failure.value)
        assert "shard 2/3" not in str(failure.value)
        assert partial.exists()

    def test_no_fail_fast_reports_every_crash(
        self, tmp_path, monkeypatch, launch_module
    ):
        import sys

        early = [
            sys.executable,
            "-c",
            "import sys; sys.stderr.write('early\\n'); sys.exit(2)",
        ]
        late = [
            sys.executable,
            "-c",
            "import sys, time; time.sleep(0.3); "
            "sys.stderr.write('late\\n'); sys.exit(5)",
        ]
        self._fake_commands(monkeypatch, launch_module, [early, late])
        _, spec_path = _write_spec(tmp_path)
        with pytest.raises(RuntimeError) as failure:
            launch(spec_path, 2, tmp_path / "merged.jsonl", fail_fast=False)
        # Every child ran to its own exit; both crashes are reported.
        assert "shard 0/2 exited 2: early" in str(failure.value)
        assert "shard 1/2 exited 5: late" in str(failure.value)
