"""Server-side pagination of ``GET /records`` + the bounded record cache.

Store-level keyset-pagination semantics (cursor exactness, concurrent
upserts, version filtering) live in ``tests/dse/test_store_pagination``;
this file covers the HTTP protocol on top -- the page terminal, client
page-following, legacy fallbacks -- and the :class:`RecordCache` that
serves repeated reads from memory.
"""

import threading

import pytest

from repro.dse import EVAL_VERSION, clear_memo
from repro.serve import ServeClient, ServeError, SweepServer, SweepService
from repro.serve.cache import RecordCache

GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}


def _records(n, version=EVAL_VERSION):
    return [
        {"hash": f"{i:064x}", "version": version, "metrics": {"i": i}}
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def live_server(tmp_path):
    server = SweepServer(SweepService(store=tmp_path / "served.sqlite"))
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture
def client(live_server):
    return ServeClient(live_server.url)


class TestPageProtocol:
    def test_full_page_terminal_carries_next_cursor(self, client):
        client.post_records(_records(25))
        raw = list(client._ndjson("/records?limit=10"))
        assert len(raw) == 11
        assert raw[-1] == {"count": 10, "next": raw[-2]["hash"]}

    def test_short_page_terminal_has_null_next(self, client):
        client.post_records(_records(3))
        raw = list(client._ndjson("/records?limit=10"))
        assert raw[-1] == {"count": 3, "next": None}

    def test_empty_page_past_the_end(self, client):
        records = _records(4)
        client.post_records(records)
        last = records[-1]["hash"]
        raw = list(client._ndjson(f"/records?limit=10&after={last}"))
        assert raw == [{"count": 0, "next": None}]

    def test_after_without_limit_uses_default_page_size(self, client):
        client.post_records(_records(2))
        first = _records(2)[0]["hash"]
        raw = list(client._ndjson(f"/records?after={first}&limit=5"))
        assert [r["hash"] for r in raw[:-1]] == [_records(2)[1]["hash"]]
        # after= alone still selects the paginated protocol.
        raw = list(client._ndjson(f"/records?after={first}"))
        assert "next" in raw[-1]

    def test_legacy_dump_is_unchanged(self, client):
        client.post_records(_records(2))
        raw = list(client._ndjson("/records"))
        assert raw[-1] == {"count": 2}  # no "next": pre-pagination shape

    def test_bad_limit_is_a_400(self, client):
        for query in ("limit=0", "limit=-3", "limit=nope"):
            with pytest.raises(ServeError, match="400"):
                list(client._ndjson(f"/records?{query}"))

    def test_pages_stream_in_hash_order(self, client):
        client.post_records(list(reversed(_records(30))))
        hashes = [r["hash"] for r in client.records(page_size=7)]
        assert hashes == sorted(hashes)
        assert len(hashes) == 30


class TestClientPaging:
    def test_paged_walk_matches_legacy_dump(self, client):
        client.post_records(_records(25))
        paged = client.records(page_size=7)
        legacy = client.records(page_size=None)
        assert paged == legacy
        assert len(paged) == 25

    def test_page_size_bounds_each_request(self, client, monkeypatch):
        client.post_records(_records(10))
        paths = []
        original = ServeClient._ndjson

        def spy(self, path, payload=None):
            paths.append(path)
            return original(self, path, payload)

        monkeypatch.setattr(ServeClient, "_ndjson", spy)
        assert len(client.records(page_size=4)) == 10
        # 4 + 4 + 2: the short last page proves completion in 3 requests.
        assert paths == [
            "/records?limit=4",
            f"/records?limit=4&after={_records(10)[3]['hash']}",
            f"/records?limit=4&after={_records(10)[7]['hash']}",
        ]

    def test_legacy_server_fallback(self, client, monkeypatch):
        # A pre-pagination server ignores the params and answers with a
        # full dump whose terminal lacks "next"; the client must return
        # it as-is instead of looping on a cursor that never comes.
        dump = _records(5)
        monkeypatch.setattr(
            ServeClient,
            "_ndjson",
            lambda self, path, payload=None: iter(
                dump + [{"count": len(dump)}]
            ),
        )
        assert client.records(page_size=2) == dump

    def test_batched_ingest_chunks_uploads(self, client, live_server):
        reply = client.post_records(_records(10), batch_size=4)
        assert reply["appended"] == 10
        assert len(reply["jobs"]) == 3  # 4 + 4 + 2
        assert reply["job"] == reply["jobs"][-1]
        assert len(live_server.service.store) == 10
        # Each chunk is its own tracked ingest job.
        job = client.job_status(reply["jobs"][0])
        assert job["kind"] == "ingest"
        assert job["progress"] == {"offered": 4, "appended": 4}

    def test_small_ingest_reply_is_unchanged(self, client):
        reply = client.post_records(_records(3), batch_size=10)
        assert reply["appended"] == 3
        assert "jobs" not in reply


class TestStorelessPagination:
    def test_memo_pages_like_a_store(self):
        service = SweepService()  # no store: memo-backed
        job = service.submit({"spec": GRID})
        assert job.wait(timeout=60) and job.state == "done", job.error
        full = service.records()
        assert len(full) == 2
        walk, after = [], None
        while True:
            page = list(service.record_page_stream(after=after, limit=1))
            terminal = page.pop()
            walk.extend(page)
            if terminal["next"] is None:
                break
            after = terminal["next"]
        assert sorted(walk, key=lambda r: r["hash"]) == sorted(
            full, key=lambda r: r["hash"]
        )


class TestRecordCacheUnit:
    def test_sync_keeps_matching_token(self):
        cache = RecordCache(10)
        cache.sync(("t", 1))
        assert cache.fill(_records(3))
        cache.sync(("t", 1))
        assert cache.snapshot() is not None

    def test_sync_clears_on_token_change_or_none(self):
        for new_token in (("t", 2), None):
            cache = RecordCache(10)
            cache.sync(("t", 1))
            cache.fill(_records(3))
            cache.sync(new_token)
            assert cache.snapshot() is None
            assert cache.stats()["invalidations"] == 1

    def test_fill_refuses_past_capacity(self):
        cache = RecordCache(2)
        assert not cache.fill(_records(3))
        assert cache.snapshot() is None

    def test_snapshot_identity(self):
        cache = RecordCache(10)
        records = _records(4)
        cache.fill(records)
        assert cache.snapshot() is records

    def test_complete_snapshot_serves_any_page(self):
        cache = RecordCache(10)
        records = _records(5)
        cache.fill(records)
        page, cursor = cache.page(None, 2)
        assert page == records[:2] and cursor == records[1]["hash"]
        page, cursor = cache.page(records[2]["hash"], 2)
        assert page == records[3:5] and cursor == records[4]["hash"]
        page, cursor = cache.page(records[4]["hash"], 2)
        assert page == [] and cursor is None

    def test_store_page_round_trip(self):
        cache = RecordCache(10)
        records = _records(3)
        assert cache.page(None, 3) is None  # miss
        cache.store_page(None, 3, records, None)
        assert cache.page(None, 3) == (records, None)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_eviction_invalidates_pages_that_lost_members(self):
        cache = RecordCache(3)
        first, second = _records(6)[:3], _records(6)[3:]
        cache.store_page(None, 3, first, first[-1]["hash"])
        cache.store_page(first[-1]["hash"], 3, second, None)
        assert cache.stats()["evictions"] == 3  # first page pushed out
        assert cache.page(None, 3) is None  # stale page dropped
        assert cache.page(first[-1]["hash"], 3) == (second, None)

    def test_oversized_page_is_not_cached(self):
        cache = RecordCache(2)
        cache.store_page(None, 5, _records(5), None)
        assert cache.stats()["records"] == 0
        assert cache.page(None, 5) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RecordCache(0)


class TestServiceCacheIntegration:
    def test_stats_exposes_the_record_cache(self, client):
        cache_stats = client.stats()["record_cache"]
        assert cache_stats["capacity"] > 0
        assert cache_stats["complete"] is False

    def test_repeat_pages_come_from_the_cache(self, tmp_path):
        service = SweepService(
            store=tmp_path / "s.sqlite", record_cache=3
        )  # too small for a complete snapshot of 10 records
        service.ingest(_records(10))
        calls = []
        original = service.store.iter_page

        def spy(**kwargs):
            calls.append(kwargs)
            return original(**kwargs)

        service.store.iter_page = spy
        first = list(service.record_page_stream(limit=2))
        assert len(calls) == 1
        again = list(service.record_page_stream(limit=2))
        assert len(calls) == 1  # served from cache
        assert again == first

    def test_local_write_invalidates_pages(self, tmp_path):
        service = SweepService(store=tmp_path / "s.sqlite", record_cache=3)
        service.ingest(_records(4))
        list(service.record_page_stream(limit=2))
        service.ingest(
            [{"hash": "00" * 32, "version": EVAL_VERSION + 1, "metrics": {}}]
        )
        assert service.record_cache.stats()["records"] == 0

    def test_disabled_cache_still_pages(self, tmp_path):
        service = SweepService(store=tmp_path / "s.sqlite", record_cache=None)
        assert service.record_cache is None
        service.ingest(_records(5))
        page = list(service.record_page_stream(limit=3))
        assert page[-1]["next"] == page[-2]["hash"]
        assert len(service.records()) == 5
        assert service.stats()["record_cache"] is None
