"""End-to-end observability: /metrics, /readyz, traces, worker metrics.

The unit behavior of the registry/tracer lives in ``tests/obs``; these
tests drive a live in-process server and assert the instrumentation is
actually threaded through the serving stack -- a scrape mid-run covers
HTTP, jobs, fleet, cache, journal, and evaluator series, terminal jobs
carry a complete phase set, and worker heartbeats surface per-worker
throughput in ``GET /workers``.
"""

import threading
import time

import pytest

from repro.dse import clear_memo
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.watch import parse_prometheus_text
from repro.serve import (
    FleetWorker,
    ServeClient,
    SweepServer,
    SweepService,
)

GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}


def _silent(_message: str) -> None:
    pass


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_memo()
    get_registry().reset()
    yield
    clear_memo()
    get_registry().reset()


@pytest.fixture
def live_server(tmp_path):
    server = SweepServer(
        SweepService(
            store=tmp_path / "served.sqlite",
            journal=tmp_path / "served.journal",
        )
    )
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture
def client(live_server):
    return ServeClient(live_server.url)


def _wait_job(client, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.job_status(job_id)
        if status["state"] not in ("queued", "running"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


class TestMetricsEndpoint:
    def test_scrape_covers_every_instrumented_layer(self, client):
        job = client.submit_job(GRID)["job"]
        _wait_job(client, job)
        client.records()  # record cache: first read misses and fills,
        client.records()  # the second hits the cached snapshot
        text = client.metrics()
        assert text.startswith("# HELP")
        samples = parse_prometheus_text(text)

        # HTTP layer: the scrape itself and the job poll both counted.
        requests = samples["repro_http_requests_total"]
        endpoints = {s["labels"]["endpoint"] for s in requests}
        assert "/jobs/{id}" in endpoints  # templated, not per-id
        assert all(s["labels"]["status"] for s in requests)

        # Jobs: submitted + finished counters and phase histograms.
        assert any(
            s["labels"] == {"kind": "sweep"}
            for s in samples["repro_jobs_submitted_total"]
        )
        assert any(
            s["labels"]["state"] == "done"
            for s in samples["repro_jobs_finished_total"]
        )
        phases = {
            s["labels"]["phase"]
            for s in samples["repro_job_phase_seconds_count"]
        }
        assert {"validate", "queue-wait", "evaluate"} <= phases

        # Engine + evaluator: tier counters and the lowered-IR cache.
        tiers = {
            s["labels"]["tier"]: s["value"]
            for s in samples["repro_eval_points_total"]
        }
        assert tiers.get("evaluated", 0) >= 2
        assert "repro_lowered_cache" in samples
        assert samples["repro_memo_records"][0]["value"] >= 2

        # Journal, cache, and collector gauges.
        assert "repro_journal_writes_total" in samples
        assert "repro_journal_write_seconds_count" in samples
        assert "repro_record_cache_hits_total" in samples
        assert "repro_jobs" in samples
        assert "repro_fleet_workers" in samples
        assert samples["repro_draining"][0]["value"] == 0

    def test_scrape_is_consistent_with_stats(self, client):
        job = client.submit_job(GRID)["job"]
        _wait_job(client, job)
        samples = parse_prometheus_text(client.metrics())
        stats = client.stats()
        jobs_gauge = {
            s["labels"]["state"]: s["value"] for s in samples["repro_jobs"]
        }
        assert jobs_gauge.get("done", 0) == stats["jobs"]["done"]
        assert samples["repro_memo_records"][0]["value"] == (
            stats["memo_records"]
        )

    def test_stats_phase_summary_mirrors_histograms(self, client):
        job = client.submit_job(GRID)["job"]
        _wait_job(client, job)
        phases = client.stats()["phases"]
        assert "sweep" in phases
        assert phases["sweep"]["evaluate"]["count"] >= 1
        assert phases["sweep"]["evaluate"]["seconds"] >= 0


class TestReadiness:
    def test_ready_when_serving(self, client):
        assert client.ready() is True

    def test_healthz_stays_alive_while_draining(self, client, live_server):
        live_server.service._draining = True
        try:
            assert client.health()["status"] == "ok"  # liveness: still up
            assert client.ready() is False  # readiness: stop routing
        finally:
            live_server.service._draining = False
        assert client.ready() is True

    def test_readyz_is_503_while_draining(self, client, live_server):
        live_server.service._draining = True
        try:
            from repro.serve import ServeError

            with pytest.raises(ServeError, match="503"):
                client._json("/readyz")
        finally:
            live_server.service._draining = False

    def test_readiness_reasons(self, tmp_path):
        service = SweepService(store=tmp_path / "r.sqlite")
        assert service.readiness() == {"ready": True}
        service._draining = True
        assert service.readiness() == {"ready": False, "reason": "draining"}
        service._draining = False
        service.close()
        assert service.readiness() == {"ready": False, "reason": "closed"}


class TestJobTraces:
    def test_terminal_job_has_complete_contiguous_phases(self, client):
        job = client.submit_job(GRID)["job"]
        status = _wait_job(client, job)
        assert status["state"] == "done"
        timings = status["timings"]
        assert timings["complete"] is True
        assert status["trace"] == timings["trace_id"]
        names = [p["phase"] for p in timings["phases"]]
        # One contiguous pass through the canonical sweep phases, no
        # repeats and nothing left open (stage-merge only appears on
        # JSONL-staged stores; this server writes SQLite directly).
        assert names == ["validate", "queue-wait", "evaluate"]
        assert all(not p["open"] for p in timings["phases"])
        assert all(p["seconds"] >= 0 for p in timings["phases"])
        assert sum(p["seconds"] for p in timings["phases"]) == pytest.approx(
            timings["total_seconds"]
        )
        assert status["duration"] == pytest.approx(timings["total_seconds"])

    def test_jsonl_staged_job_gets_a_stage_merge_phase(self, tmp_path):
        server = SweepServer(SweepService(store=tmp_path / "staged.jsonl"))
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02),
            daemon=True,
        )
        thread.start()
        try:
            client = ServeClient(server.url)
            job = client.submit_job(GRID)["job"]
            status = _wait_job(client, job)
            assert status["state"] == "done"
            names = [p["phase"] for p in status["timings"]["phases"]]
            assert names == [
                "validate",
                "queue-wait",
                "evaluate",
                "stage-merge",
            ]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_ingest_job_phases(self, client):
        sweep = client.submit_job(GRID)["job"]
        assert _wait_job(client, sweep)["state"] == "done"
        ingest_id = client.post_records(client.records())["job"]
        ingest = _wait_job(client, ingest_id)
        assert ingest["state"] == "done"
        names = [p["phase"] for p in ingest["timings"]["phases"]]
        assert names == ["validate", "queue-wait", "ingest"]


class TestWatchOnce:
    def test_once_json_snapshot_against_live_server(self, client, live_server):
        import io
        import json

        from repro.obs.watch import watch

        job = client.submit_job(GRID)["job"]
        _wait_job(client, job)
        out = io.StringIO()
        assert watch(live_server.url, once=True, fmt="json", out=out) == 0
        snapshot = json.loads(out.getvalue())
        assert snapshot["ready"] is True
        assert snapshot["stats"]["store"]["records"] == 2
        assert any(j["job"] == job for j in snapshot["jobs"])
        assert snapshot["metrics"]["eval_points"]["evaluated"] >= 2


class TestWorkerMetrics:
    def test_heartbeat_carries_metrics_into_workers_view(self, client):
        """A worker-shaped registry snapshot shipped over HTTP lands as
        a compact summary in ``GET /workers``."""
        worker_id = client.register_worker(name="obs-w")["worker"]
        local = MetricsRegistry()
        local.counter("repro_worker_points_total", "P.").inc(42)
        local.counter(
            "repro_worker_chunks_total", "C.", labelnames=("result",)
        ).inc(3, result="ok")
        local.histogram("repro_worker_eval_seconds", "E.").observe(1.5)
        local.histogram("repro_worker_upload_seconds", "U.").observe(0.25)
        client.worker_heartbeat(worker_id, metrics=local.snapshot())
        (row,) = [r for r in client.workers() if r["name"] == "obs-w"]
        assert row["heartbeat_age"] >= 0
        assert row["metrics"] == {
            "points_total": 42.0,
            "chunks_total": 3.0,
            "eval_seconds_sum": 1.5,
            "upload_seconds_sum": 0.25,
        }

    def test_real_worker_reports_metrics_on_exit(self, client, live_server):
        """An end-to-end FleetWorker run accumulates throughput in its
        private registry -- the snapshot its heartbeats ship."""
        client.submit_job(GRID, fleet={"chunks": 2})
        worker = FleetWorker(
            live_server.url,
            name="obs-e2e",
            poll=0.01,
            exit_when_drained=True,
            log=_silent,
        )
        assert worker.run() == 0
        assert worker.metrics.snapshot()["counters"][
            "repro_worker_points_total"
        ][0]["value"] >= 2
        (row,) = [r for r in client.workers() if r["name"] == "obs-e2e"]
        assert row["chunks_done"] >= 1
        # The farewell heartbeat shipped the snapshot even though the
        # worker drained inside one heartbeat period.
        assert row["metrics"] is not None
        assert row["metrics"]["points_total"] >= 2
        assert row["metrics"]["chunks_total"] >= 1

    def test_chunk_phase_histogram_fills_end_to_end(self, client, live_server):
        client.submit_job(GRID, fleet={"chunks": 2})
        worker = FleetWorker(
            live_server.url,
            poll=0.01,
            exit_when_drained=True,
            log=_silent,
        )
        assert worker.run() == 0
        samples = parse_prometheus_text(client.metrics())
        phases = {
            s["labels"]["phase"]: s["value"]
            for s in samples["repro_fleet_chunk_phase_seconds_count"]
        }
        # Coordinator-side phases plus the worker-reported ones shipped
        # in ack timings.
        assert {
            "lease-wait",
            "worker-eval",
            "upload",
            "ack-turnaround",
        } <= set(phases)
        assert all(count >= 1 for count in phases.values())
        acks = {
            s["labels"]["result"]: s["value"]
            for s in samples["repro_fleet_acks_total"]
        }
        assert acks.get("ok", 0) >= 1
