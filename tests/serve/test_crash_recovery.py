"""Crash-recovery tests that actually kill the server.

Each test SIGKILLs a real ``repro serve`` subprocess mid-flight and
restarts it against the same store + journal, asserting the restarted
server completes every accepted job and the final store is
byte-identical to an uninterrupted local run.  Evaluation here is fast
relative to HTTP polling, so the kill may land while a job is queued,
running, or already done -- the assertions are valid wherever it lands
(that is the crash-safety contract).

The hypothesis property at the bottom drives the same invariant
deterministically: replaying a journal whose job has *any* prefix of
its records already staged never re-evaluates a config hash.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.dse import clear_memo
from repro.dse.engine import run_sweep
from repro.dse.spec import SweepSpec
from repro.dse.store import ResultStore
from repro.serve import ServeClient, ServeError, SweepService
from repro.serve.fleet import FleetWorker
from repro.serve.journal import JobJournal
from repro.serve.jobs import Job

SRC = str(Path(repro.__file__).resolve().parents[1])

BIG = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["tpu", "bitfusion", "bpvec"],
        "memories": ["ddr4", "hbm2"],
        "batches": [1, 2, 4, 8, 16, 32, 64],
    }
}  # 84 points

SMALL = {
    "grid": {
        "workloads": ["RNN"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}

WIDE = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["tpu", "bpvec"],
        "memories": ["ddr4", "hbm2"],
        "batches": [1, 4, 16],
    }
}  # 24 points


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _canonical(records) -> list[str]:
    return sorted(json.dumps(r, sort_keys=True) for r in records)


def _silent(_message: str) -> None:
    pass


class _Server:
    """One ``repro serve`` subprocess; killable and restartable."""

    def __init__(self, store: Path, port: int = 0, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store",
                str(store),
                "--port",
                str(port),
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = self.proc.stdout.readline()
        assert "serving DSE sweeps on http://" in line, line
        self.url = line.split(" on ", 1)[1].split(" ", 1)[0].strip()
        self.port = int(self.url.rsplit(":", 1)[1])
        # The announce precedes serve_forever(); wait for the loop.
        client = ServeClient(self.url, timeout=5.0, retries=0)
        deadline = time.time() + 10
        while True:
            try:
                client.health()
                return
            except ServeError:
                if time.time() > deadline:
                    raise
                time.sleep(0.02)

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)

    def shutdown(self, drain: bool = True) -> int:
        try:
            ServeClient(self.url, retries=0).shutdown(drain=drain)
        except ServeError:
            pass  # the process may exit before the response flushes
        return self.proc.wait(timeout=30)

    def reap(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _restart_same_port(store: Path, server: _Server, extra=()) -> _Server:
    """Restart on the dead server's port so live clients keep working."""
    deadline = time.time() + 10
    while True:
        try:
            return _Server(store, port=server.port, extra=extra)
        except AssertionError:
            # The dying process can hold the port for a beat.
            if time.time() > deadline:
                raise
            time.sleep(0.1)


def _wait_jobs_done(client: ServeClient, job_ids, timeout=60.0) -> dict:
    deadline = time.time() + timeout
    states = {}
    while time.time() < deadline:
        states = {jid: client.job_status(jid)["state"] for jid in job_ids}
        if all(s in ("done", "failed", "cancelled") for s in states.values()):
            return states
        time.sleep(0.05)
    raise AssertionError(f"jobs never finished: {states}")


def _local_union(*specs) -> list[dict]:
    clear_memo()
    merged: dict[str, dict] = {}
    for payload in specs:
        for record in run_sweep(
            SweepSpec.from_dict(payload), vectorize=False
        ).records:
            merged[record["hash"]] = record
    clear_memo()
    return list(merged.values())


class TestServerSigkill:
    def test_scalar_jobs_survive_sigkill(self, tmp_path):
        store = tmp_path / "crash.jsonl"
        server = _Server(store, extra=("--job-workers", "1"))
        try:
            client = ServeClient(server.url, retries=0)
            running = client.submit_job(BIG, vectorize=False)["job"]
            queued = client.submit_job(SMALL, vectorize=False)["job"]
            # Kill as soon as the first job leaves the queue (or is
            # already done -- the assertions hold wherever this lands).
            deadline = time.time() + 10
            while time.time() < deadline:
                if client.job_status(running)["state"] != "queued":
                    break
            server.sigkill()

            server = _restart_same_port(
                store, server, extra=("--job-workers", "1")
            )
            client = ServeClient(server.url, retries=0)
            recovery = client.stats()["journal"]["recovery"]
            assert recovery["prior_shutdown"] == "crash"
            states = _wait_jobs_done(client, [running, queued])
            assert set(states.values()) == {"done"}

            assert _canonical(ResultStore(store).load().values()) == (
                _canonical(_local_union(BIG, SMALL))
            )
            assert not list(tmp_path.glob("*.staging"))
            assert server.shutdown(drain=True) == 0
        finally:
            server.reap()

    def test_vectorized_jobs_survive_immediate_sigkill(self, tmp_path):
        store = tmp_path / "crash.sqlite"
        server = _Server(store)
        try:
            client = ServeClient(server.url, retries=0)
            job_ids = [
                client.submit_job(payload)["job"]
                for payload in (BIG, WIDE, SMALL)
            ]
            server.sigkill()  # queue likely still full

            server = _restart_same_port(store, server)
            client = ServeClient(server.url, retries=0)
            states = _wait_jobs_done(client, job_ids)
            assert set(states.values()) == {"done"}

            clear_memo()
            local = {
                record["hash"]: record
                for payload in (BIG, WIDE, SMALL)
                for record in run_sweep(SweepSpec.from_dict(payload)).records
            }
            served = client.records()
            assert _canonical(served) == _canonical(local.values())
            assert not list(tmp_path.glob("*.staging"))
            assert server.shutdown(drain=True) == 0
        finally:
            server.reap()

    def test_fleet_job_survives_sigkill_mid_sweep(self, tmp_path):
        store = tmp_path / "fleet.jsonl"
        local = _local_union(WIDE)

        server = _Server(store)
        worker = None
        thread = None
        try:
            client = ServeClient(server.url, retries=0)
            job_id = client.submit_job(WIDE, fleet={"chunks": 6})["job"]
            # Throttled worker: each chunk holds its lease a while, so
            # the kill lands while chunks are leased/unacked.
            worker = FleetWorker(
                server.url,
                name="chaos",
                poll=0.05,
                throttle=0.3,
                vectorize=False,
                reconnect_grace=30.0,
                exit_when_drained=True,
                log=_silent,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            time.sleep(0.45)
            server.sigkill()

            server = _restart_same_port(store, server)
            client = ServeClient(server.url, retries=0)
            states = _wait_jobs_done(client, [job_id])
            assert states == {job_id: "done"}
            thread.join(timeout=30)
            assert not thread.is_alive()

            assert _canonical(ResultStore(store).load().values()) == (
                _canonical(local)
            )
            assert not list(tmp_path.glob("*.staging"))
            assert server.shutdown(drain=True) == 0
        finally:
            if worker is not None:
                worker.stop()
            if thread is not None:
                thread.join(timeout=10)
            server.reap()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(staged=st.integers(min_value=0, max_value=24))
def test_replaying_any_journal_prefix_never_reevaluates(staged):
    """Recovery property: whatever record prefix a dead server managed
    to stage, the resumed job serves exactly that prefix from the store
    and evaluates exactly the rest -- no config hash runs twice, and
    the final store matches an uninterrupted run byte for byte."""
    spec = SweepSpec.from_dict(WIDE)
    clear_memo()
    local = run_sweep(spec, vectorize=False).records
    prefix = local[:staged]

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store.jsonl"
        jpath = Path(tmp) / "store.jsonl.journal"
        journal = JobJournal(jpath)
        job = Job(spec=spec, vectorize=False)
        job.journal = journal
        journal.record_submit(job)
        job.mark_running()
        if prefix:
            ResultStore(
                store.with_name(f"{store.name}.job-{job.id}.staging")
            ).append(prefix)
        journal.close()

        clear_memo()
        service = SweepService(store=store, journal=jpath)
        try:
            recovered = service.jobs.get(job.id)
            assert recovered.wait(30)
            assert recovered.state == "done"
            assert recovered.counts["store"] == staged
            assert recovered.counts["evaluated"] == len(spec) - staged
            assert recovered.counts["memo"] == 0
            assert _canonical(ResultStore(store).load().values()) == (
                _canonical(local)
            )
        finally:
            service.close()
    clear_memo()
