"""Tests for the power-budget scaling study."""

import pytest

from repro.experiments import budget_sweep, resize_for_budget
from repro.hw import BITFUSION, BPVEC, DDR4, TPU_LIKE


class TestResizeForBudget:
    def test_250mw_reproduces_table2(self):
        assert resize_for_budget(TPU_LIKE, 250).num_macs == 512
        assert resize_for_budget(BPVEC, 250).num_macs == 1024

    def test_scaling_is_roughly_linear(self):
        half = resize_for_budget(BPVEC, 125)
        double = resize_for_budget(BPVEC, 500)
        assert half.num_macs == 512
        assert double.num_macs == 2048

    def test_style_preserved(self):
        resized = resize_for_budget(BITFUSION, 500)
        assert resized.style == "bitfusion"
        assert resized.num_macs > BITFUSION.num_macs

    def test_geometry_stays_consistent(self):
        for budget in (125, 250, 500):
            spec = resize_for_budget(BPVEC, budget)
            assert spec.array_rows * spec.array_cols * spec.lanes == spec.num_macs

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            resize_for_budget(BPVEC, 0)


class TestBudgetSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return budget_sweep((125, 250), DDR4)

    def test_point_per_budget(self, points):
        assert [p.budget_mw for p in points] == [125, 250]

    def test_advantage_holds_at_every_budget(self, points):
        for p in points:
            assert p.speedup_vs_baseline > 1.25
            assert p.energy_vs_baseline > 1.1
            assert p.bpvec_macs >= 1.85 * p.baseline_macs

    def test_250mw_point_matches_fig5(self, points):
        """The sweep's 250 mW point is exactly the Fig. 5 configuration."""
        p250 = points[1]
        assert p250.baseline_macs == 512
        assert p250.speedup_vs_baseline == pytest.approx(1.47, abs=0.03)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            budget_sweep((), DDR4)
