"""Dedicated unit tests for the one-command reproduction report."""

import pytest

from repro.experiments.report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report()


class TestGenerateReport:
    def test_header_identifies_the_artifact(self, report):
        assert report.startswith("# BPVeC reproduction report")
        assert "python -m repro report" in report

    def test_every_section_present_in_paper_order(self, report):
        sections = [line for line in report.splitlines() if line.startswith("## ")]
        assert len(sections) == 9
        for index, marker in enumerate(
            [
                "Table I",
                "Table II",
                "Chip-level",
                "Figure 4",
                "Figure 5",
                "Figure 6",
                "Figure 7",
                "Figure 8",
                "Figure 9",
            ]
        ):
            assert marker in sections[index]

    def test_code_fences_balanced(self, report):
        assert report.count("```") == 2 * 9

    def test_sections_carry_their_tables(self, report):
        assert "AlexNet" in report  # Table I rows
        assert "BPVeC" in report  # Table II platforms
        assert "GEOMEAN" in report  # speedup tables
        assert "mm^2" in report  # chip accounting
        assert "vs GPU (DDR4)" in report  # Figure 9 columns

    def test_fig4_section_lists_cost_breakdown_columns(self, report):
        for column in ("Mult", "Add", "Shift", "Reg", "Total"):
            assert column in report

    def test_report_is_deterministic(self, report):
        assert generate_report() == report
