"""Integration tests: the experiment drivers reproduce the paper's shape.

Each test asserts a qualitative claim from the paper's evaluation (who
wins, by roughly what factor, where the crossovers fall).  Quantitative
paper-vs-measured numbers are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    GEOMEAN,
    fig4_both_models,
    fig4_design_space,
    fig5_homogeneous_ddr4,
    fig6_homogeneous_hbm2,
    fig7_heterogeneous_ddr4,
    fig8_heterogeneous_hbm2,
    fig9_gpu_comparison,
    render_speedup_rows,
    render_table1,
    render_table2,
    table1,
    table2,
)


def _geo(rows, platform=None, memory=None):
    for r in rows:
        if r.workload != GEOMEAN:
            continue
        if platform and r.platform != platform:
            continue
        if memory and r.memory != memory:
            continue
        return r
    raise AssertionError("no geomean row matched")


def _row(rows, workload, platform=None):
    for r in rows:
        if r.workload == workload and (platform is None or r.platform == platform):
            return r
    raise AssertionError(f"no row for {workload}")


@pytest.fixture(scope="module")
def fig5():
    return fig5_homogeneous_ddr4()


@pytest.fixture(scope="module")
def fig6():
    return fig6_homogeneous_hbm2()


@pytest.fixture(scope="module")
def fig7():
    return fig7_heterogeneous_ddr4()


@pytest.fixture(scope="module")
def fig8():
    return fig8_heterogeneous_hbm2()


@pytest.fixture(scope="module")
def fig9():
    return fig9_gpu_comparison()


class TestFig4:
    def test_sweep_covers_both_metrics_and_slicings(self):
        points = fig4_design_space()
        keys = {(p.metric, p.slice_width, p.lanes) for p in points}
        assert len(keys) == 2 * 2 * 5

    def test_optimum_is_2bit_l16(self):
        points = fig4_design_space()
        power = {
            (p.slice_width, p.lanes): p.total for p in points if p.metric == "power"
        }
        assert min(power, key=power.get) == (2, 16)
        assert power[(2, 16)] == pytest.approx(0.49, abs=0.02)

    def test_both_models_agree_qualitatively(self):
        for name, points in fig4_both_models().items():
            power = {
                (p.slice_width, p.lanes): p.total
                for p in points
                if p.metric == "power"
            }
            # 2-bit beats 1-bit at every L; L=16 beats L=1 for both slicings.
            for lanes in (1, 2, 4, 8, 16):
                assert power[(2, lanes)] < power[(1, lanes)], name
            for sw in (1, 2):
                assert power[(sw, 16)] < power[(sw, 1)], name


class TestFig5:
    def test_geomean_speedup_near_paper_40_percent(self, fig5):
        """Paper: ~40% speedup over the fixed-bitwidth baseline."""
        assert 1.30 <= _geo(fig5).speedup <= 1.60

    def test_geomean_energy_reduction_positive(self, fig5):
        assert 1.15 <= _geo(fig5).energy_reduction <= 1.60

    def test_cnns_gain_more_than_rnns(self, fig5):
        """Paper: CNNs enjoy more benefits; RNNs starve on DDR4 bandwidth."""
        for cnn in ("AlexNet", "Inception-v1", "ResNet-18", "ResNet-50"):
            assert _row(fig5, cnn).speedup > 1.4
        for rnn in ("RNN", "LSTM"):
            assert _row(fig5, rnn).speedup == pytest.approx(1.0, abs=0.1)

    def test_speedup_never_exceeds_resource_ratio(self, fig5):
        """2x compute cannot give more than 2x in homogeneous mode."""
        for r in fig5:
            assert r.speedup <= 2.05


class TestFig6:
    def test_baseline_barely_helped_by_hbm2(self, fig6):
        """Paper: baseline gains only ~10% speedup from HBM2."""
        geo = _geo(fig6, platform="TPU-like baseline")
        assert 1.0 <= geo.speedup <= 1.15

    def test_bpvec_exploits_hbm2(self, fig6):
        """Paper: BPVeC turns HBM2 into ~2.1x speedup."""
        geo = _geo(fig6, platform="BPVeC")
        assert 1.85 <= geo.speedup <= 2.25

    def test_rnns_gain_most_with_bandwidth(self, fig6):
        """Paper: bandwidth-hungry RNN/LSTM see the biggest HBM2 boost."""
        rnn = _row(fig6, "RNN", platform="BPVeC")
        lstm = _row(fig6, "LSTM", platform="BPVeC")
        assert rnn.speedup > 2.0 and lstm.speedup > 2.0

    def test_bpvec_hbm2_energy_reduction(self, fig6):
        """Paper: 2.3x energy reduction; our model lands at ~1.8x."""
        geo = _geo(fig6, platform="BPVeC")
        assert geo.energy_reduction > 1.6


class TestFig7:
    def test_geomean_speedup_over_bitfusion(self, fig7):
        """Paper: ~50% average speedup over BitFusion (we measure ~60%)."""
        assert 1.35 <= _geo(fig7).speedup <= 1.80

    def test_energy_reduction_modest(self, fig7):
        """Paper: ~10% energy reduction; our model gives ~20-30%."""
        assert 1.00 <= _geo(fig7).energy_reduction <= 1.40

    def test_cnns_beat_rnns_again(self, fig7):
        for cnn in ("AlexNet", "Inception-v1", "ResNet-18"):
            assert _row(fig7, cnn).speedup > 1.6
        for rnn in ("RNN", "LSTM"):
            assert _row(fig7, rnn).speedup == pytest.approx(1.0, abs=0.15)

    def test_speedup_bounded_by_resource_ratio(self, fig7):
        """BPVeC has ~2.3x BitFusion's units; speedup cannot exceed it much."""
        for r in fig7:
            assert r.speedup <= 2.35


class TestFig8:
    def test_bpvec_hbm2_geomean(self, fig8):
        """Paper: 2.5x speedup over BitFusion+HBM2 context (3.5x vs DDR4)."""
        geo = _geo(fig8, platform="BPVeC")
        assert 2.4 <= geo.speedup <= 3.6

    def test_rnns_see_highest_benefit(self, fig8):
        """Paper: RNN/LSTM peak at ~4.5x; compute + bandwidth compound."""
        rnn = _row(fig8, "RNN", platform="BPVeC")
        assert rnn.speedup > 3.5
        cnn_speedups = [
            _row(fig8, w, platform="BPVeC").speedup
            for w in ("Inception-v1", "ResNet-18", "ResNet-50")
        ]
        assert rnn.speedup > max(cnn_speedups)

    def test_bitfusion_gains_from_hbm2_mostly_on_rnns(self, fig8):
        bf_rnn = _row(fig8, "RNN", platform="BitFusion")
        bf_resnet = _row(fig8, "ResNet-18", platform="BitFusion")
        assert bf_rnn.speedup > 1.5
        assert bf_resnet.speedup == pytest.approx(1.0, abs=0.1)


class TestFig9:
    def test_homogeneous_geomeans_order_of_magnitude(self, fig9):
        """Paper: 28-34x average Perf/Watt over the GPU."""
        homo = [r for r in fig9 if r.regime == "homogeneous"]
        geo = _row(homo, GEOMEAN)
        assert 15 <= geo.ddr4_ratio <= 45
        assert 20 <= geo.hbm2_ratio <= 60

    def test_rnns_dominate_the_comparison(self, fig9):
        """Paper: RNN models see the most benefit (vector-matrix heavy)."""
        homo = [r for r in fig9 if r.regime == "homogeneous"]
        rnn = _row(homo, "RNN")
        for cnn in ("AlexNet", "Inception-v1", "ResNet-18", "ResNet-50"):
            assert rnn.ddr4_ratio > 3 * _row(homo, cnn).ddr4_ratio

    def test_every_ratio_above_one(self, fig9):
        for r in fig9:
            assert r.ddr4_ratio > 1.0 and r.hbm2_ratio > 1.0

    def test_heterogeneous_regime_present(self, fig9):
        het = [r for r in fig9 if r.regime == "heterogeneous"]
        assert len(het) == 7  # six workloads + geomean


class TestTables:
    def test_table1_six_models(self):
        rows = table1()
        assert len(rows) == 6
        assert {r.model for r in rows} == {
            "AlexNet",
            "Inception-v1",
            "ResNet-18",
            "ResNet-50",
            "RNN",
            "LSTM",
        }

    def test_table1_gops_match_paper(self):
        targets = {"AlexNet": 2678, "ResNet-50": 8030, "LSTM": 13}
        rows = {r.model: r for r in table1()}
        for model, gops in targets.items():
            assert rows[model].giga_ops == pytest.approx(gops, rel=0.06)

    def test_table2_platforms(self):
        asics, gpu = table2()
        assert [s.num_macs for s in asics] == [512, 448, 1024]
        assert gpu.name == "RTX 2080 TI"

    def test_renderers_produce_text(self):
        assert "AlexNet" in render_table1()
        assert "BPVeC" in render_table2()
        assert "GEOMEAN" in render_speedup_rows(fig5_homogeneous_ddr4())
