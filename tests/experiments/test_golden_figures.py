"""Golden-value regression tests for the figure drivers.

``golden_values.json`` pins the per-workload speedups, energy reductions
and Perf/Watt ratios of fig4-fig9 -- captured from the drivers *before*
they were rewired onto the DSE engine -- plus SHA-256 hashes of the
rendered tables.  Any refactor that silently changes a reproduction
number (or even its formatting) fails here.

The simulators are deterministic, so the tolerance is tight; it exists
only to absorb a future change in floating-point summation order, which
would be a deliberate, golden-regenerating event anyway.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cli import _run_figure
from repro.experiments import (
    fig4_design_space,
    fig5_homogeneous_ddr4,
    fig6_homogeneous_hbm2,
    fig7_heterogeneous_ddr4,
    fig8_heterogeneous_hbm2,
    fig9_gpu_comparison,
    render_speedup_rows,
)
from repro.sim import format_table

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_values.json").read_text()
)
REL_TOL = 1e-9

SPEEDUP_DRIVERS = {
    "fig5": fig5_homogeneous_ddr4,
    "fig6": fig6_homogeneous_hbm2,
    "fig7": fig7_heterogeneous_ddr4,
    "fig8": fig8_heterogeneous_hbm2,
}


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.fixture(scope="module")
def speedup_rows():
    return {name: driver() for name, driver in SPEEDUP_DRIVERS.items()}


@pytest.mark.parametrize("figure", sorted(SPEEDUP_DRIVERS))
def test_speedup_values_pinned(figure, speedup_rows):
    rows = speedup_rows[figure]
    golden = GOLDEN["figures"][figure]
    assert len(rows) == len(golden)
    for row, want in zip(rows, golden):
        assert (row.workload, row.platform, row.memory) == (
            want["workload"],
            want["platform"],
            want["memory"],
        )
        assert row.speedup == pytest.approx(want["speedup"], rel=REL_TOL)
        assert row.energy_reduction == pytest.approx(
            want["energy_reduction"], rel=REL_TOL
        )


@pytest.mark.parametrize("figure", sorted(SPEEDUP_DRIVERS))
def test_speedup_tables_byte_identical(figure, speedup_rows):
    table = render_speedup_rows(speedup_rows[figure])
    assert _sha256(table) == GOLDEN["tables_sha256"][figure]


def test_fig9_values_pinned():
    rows = fig9_gpu_comparison()
    golden = GOLDEN["figures"]["fig9"]
    assert len(rows) == len(golden)
    for row, want in zip(rows, golden):
        assert (row.workload, row.regime) == (want["workload"], want["regime"])
        assert row.ddr4_ratio == pytest.approx(want["ddr4_ratio"], rel=REL_TOL)
        assert row.hbm2_ratio == pytest.approx(want["hbm2_ratio"], rel=REL_TOL)


def test_fig9_table_byte_identical():
    rows = fig9_gpu_comparison()
    table = format_table(
        ["Workload", "Regime", "vs GPU (DDR4)", "vs GPU (HBM2)"],
        [(r.workload, r.regime, r.ddr4_ratio, r.hbm2_ratio) for r in rows],
        precision=1,
    )
    assert _sha256(table) == GOLDEN["tables_sha256"]["fig9"]


def test_fig4_values_pinned():
    points = fig4_design_space()
    golden = GOLDEN["figures"]["fig4"]
    assert len(points) == len(golden)
    for point, want in zip(points, golden):
        assert (point.metric, point.slice_width, point.lanes) == (
            want["metric"],
            want["slice_width"],
            want["lanes"],
        )
        assert point.total == pytest.approx(want["total"], rel=REL_TOL)


def test_fig4_table_byte_identical():
    assert _sha256(_run_figure("fig4")) == GOLDEN["tables_sha256"]["fig4"]
