"""Dedicated unit tests for the Table I / Table II drivers."""

import pytest

from repro.baselines.gpu import RTX_2080_TI
from repro.experiments.tables import (
    Table1Row,
    render_table1,
    render_table2,
    table1,
    table2,
)
from repro.hw.platforms import ALL_ASIC_PLATFORMS
from repro.nn.bitwidths import ALL_4BIT_MODELS, FIRST_LAST_8BIT_MODELS


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1()

    def test_covers_all_six_workloads(self, rows):
        assert [r.model for r in rows] == [
            "AlexNet",
            "Inception-v1",
            "ResNet-18",
            "ResNet-50",
            "RNN",
            "LSTM",
        ]

    def test_kinds_split_cnn_and_rnn(self, rows):
        kinds = {r.model: r.kind for r in rows}
        assert kinds["AlexNet"] == "CNN"
        assert kinds["RNN"] == "RNN" and kinds["LSTM"] == "RNN"

    def test_sizes_and_ops_positive(self, rows):
        for row in rows:
            assert isinstance(row, Table1Row)
            assert row.model_size_mb > 0
            assert row.giga_ops > 0

    def test_bitwidth_descriptions_match_policy_tables(self, rows):
        for row in rows:
            if row.model in FIRST_LAST_8BIT_MODELS:
                assert row.heterogeneous_bitwidths.startswith("First and last")
            elif row.model in ALL_4BIT_MODELS:
                assert row.heterogeneous_bitwidths == "All layers with 4-bit"
            else:  # pragma: no cover - every paper model is classified
                assert row.heterogeneous_bitwidths == "n/a"

    def test_alexnet_size_matches_paper_scale(self, rows):
        alexnet = rows[0]
        # 61M parameters at INT8 is ~61 MB (Table I's Model Size column).
        assert alexnet.model_size_mb == pytest.approx(61, rel=0.05)

    def test_render_contains_headers_and_models(self):
        text = render_table1()
        assert "DNN Model" in text and "Heterogeneous Bitwidths" in text
        assert "AlexNet" in text and "LSTM" in text
        assert len(text.splitlines()) == 2 + 6


class TestTable2:
    def test_returns_registry_platforms(self):
        asics, gpu = table2()
        assert asics == ALL_ASIC_PLATFORMS
        assert gpu is RTX_2080_TI

    def test_render_has_asic_and_gpu_sections(self):
        text = render_table2()
        assert "ASIC platforms" in text and "GPU platform" in text
        for spec in ALL_ASIC_PLATFORMS:
            assert spec.name in text
        assert "RTX 2080 TI" in text

    def test_render_reports_shared_budget_figures(self):
        text = render_table2()
        assert "112 KB" in text  # shared on-chip scratchpad
        assert "500 MHz" in text and "45 nm" in text
        assert "Systolic" in text and "Turing" in text
