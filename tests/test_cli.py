"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestPaperCommands:
    def test_table1(self, capsys):
        out = run(capsys, "table1")
        assert "AlexNet" in out and "LSTM" in out

    def test_table2(self, capsys):
        out = run(capsys, "table2")
        assert "BPVeC" in out and "RTX 2080 TI" in out

    def test_fig4(self, capsys):
        out = run(capsys, "fig4")
        assert "2-bit" in out and "1-bit" in out

    def test_fig5(self, capsys):
        out = run(capsys, "fig5")
        assert "GEOMEAN" in out

    def test_fig9(self, capsys):
        out = run(capsys, "fig9")
        assert "homogeneous" in out and "heterogeneous" in out

    def test_chips(self, capsys):
        out = run(capsys, "chips")
        assert "mm^2" in out


class TestSimulateCommand:
    def test_simulate_basic(self, capsys):
        out = run(capsys, "simulate", "--model", "LSTM")
        assert "LSTM on BPVeC" in out
        assert "lstm1" in out

    def test_simulate_platform_memory_flags(self, capsys):
        out = run(
            capsys,
            "simulate",
            "--model",
            "resnet-18",  # case-insensitive
            "--platform",
            "tpu",
            "--memory",
            "hbm2",
            "--batch",
            "1",
        )
        assert "TPU-like" in out and "HBM2" in out

    def test_simulate_heterogeneous(self, capsys):
        out = run(capsys, "simulate", "--model", "AlexNet", "--batch", "1",
                  "--heterogeneous")
        assert "4x4" in out and "8x8" in out

    def test_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "VGG-99"])


class TestRooflineCommand:
    def test_roofline_output(self, capsys):
        out = run(capsys, "roofline", "--model", "LSTM", "--memory", "ddr4")
        assert "ridge point" in out
        assert "MACs/byte" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--model", "LSTM", "--platform", "gpu"])


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        out = run(capsys, "report")
        assert "# BPVeC reproduction report" in out
        assert "Figure 9" in out and "GEOMEAN" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        out = run(capsys, "report", "--output", str(target))
        assert "wrote" in out
        text = target.read_text()
        assert text.count("## ") == 9
