"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dse import clear_memo


def run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestPaperCommands:
    def test_table1(self, capsys):
        out = run(capsys, "table1")
        assert "AlexNet" in out and "LSTM" in out

    def test_table2(self, capsys):
        out = run(capsys, "table2")
        assert "BPVeC" in out and "RTX 2080 TI" in out

    def test_fig4(self, capsys):
        out = run(capsys, "fig4")
        assert "2-bit" in out and "1-bit" in out

    def test_fig5(self, capsys):
        out = run(capsys, "fig5")
        assert "GEOMEAN" in out

    def test_fig9(self, capsys):
        out = run(capsys, "fig9")
        assert "homogeneous" in out and "heterogeneous" in out

    def test_chips(self, capsys):
        out = run(capsys, "chips")
        assert "mm^2" in out


class TestSimulateCommand:
    def test_simulate_basic(self, capsys):
        out = run(capsys, "simulate", "--model", "LSTM")
        assert "LSTM on BPVeC" in out
        assert "lstm1" in out

    def test_simulate_platform_memory_flags(self, capsys):
        out = run(
            capsys,
            "simulate",
            "--model",
            "resnet-18",  # case-insensitive
            "--platform",
            "tpu",
            "--memory",
            "hbm2",
            "--batch",
            "1",
        )
        assert "TPU-like" in out and "HBM2" in out

    def test_simulate_heterogeneous(self, capsys):
        out = run(
            capsys, "simulate", "--model", "AlexNet", "--batch", "1", "--heterogeneous"
        )
        assert "4x4" in out and "8x8" in out

    def test_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "VGG-99"])


class TestRooflineCommand:
    def test_roofline_output(self, capsys):
        out = run(capsys, "roofline", "--model", "LSTM", "--memory", "ddr4")
        assert "ridge point" in out
        assert "MACs/byte" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--model", "LSTM", "--platform", "gpu"]
            )


class TestDseCommand:
    def test_default_table_output(self, capsys):
        out = run(capsys, "dse", "--workload", "LSTM", "--workload", "RNN")
        lines = out.strip().splitlines()
        assert lines[0].split() == [
            "Workload", "Platform", "Memory", "Policy", "Batch",
            "Time", "(ms)", "Energy", "(mJ)", "GOPS/W",
        ]
        # 2 workloads x 3 platforms x 2 memories, plus header/rule/summary.
        assert sum("LSTM" in line or "RNN" in line for line in lines) == 12
        assert "12 points" in lines[-1]

    def test_jsonl_output_parses(self, capsys):
        out = run(
            capsys, "dse", "--workload", "LSTM", "--platform", "bpvec",
            "--memory", "ddr4", "--format", "jsonl",
        )
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert len(records) == 1
        assert records[0]["workload"] == "LSTM"
        assert "total_seconds" in records[0]["metrics"]

    def test_no_vectorize_bit_identical(self, capsys):
        argv = (
            "dse", "--workload", "LSTM", "--workload", "AlexNet",
            "--policy", "paper-heterogeneous", "--format", "jsonl",
        )
        clear_memo()
        vectorized = run(capsys, *argv)
        clear_memo()
        scalar = run(capsys, *argv, "--no-vectorize")
        assert scalar == vectorized

    def test_store_warm_rerun(self, capsys, tmp_path):
        store = tmp_path / "results.jsonl"
        argv = (
            "dse",
            "--workload",
            "RNN",
            "--platform",
            "tpu",
            "--memory",
            "hbm2",
            "--store",
            str(store),
        )
        clear_memo()
        cold = run(capsys, *argv)
        assert "1 evaluated" in cold
        clear_memo()
        warm = run(capsys, *argv)
        assert "0 evaluated" in warm and "1 store hits" in warm
        assert store.exists()

    def test_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "sweep.json"
        spec.write_text(
            json.dumps(
                {
                    "grid": {
                        "workloads": ["LSTM"],
                        "platforms": ["bpvec"],
                        "memories": ["ddr4", "hbm2"],
                        "policies": ["uniform-4x4"],
                    }
                }
            )
        )
        out = run(capsys, "dse", "--spec", str(spec), "--format", "jsonl")
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert {r["memory"] for r in records} == {"DDR4", "HBM2"}
        assert all(r["policy"] == "uniform-4x4" for r in records)

    def test_pareto_filter(self, capsys):
        out = run(capsys, "dse", "--workload", "LSTM", "--pareto", "--format", "jsonl")
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert 1 <= len(records) <= 6

    def test_top_k(self, capsys):
        out = run(
            capsys,
            "dse",
            "--workload",
            "LSTM",
            "--top-k",
            "2",
            "--objective",
            "perf_per_watt",
            "--sense",
            "max",
            "--format",
            "jsonl",
        )
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert len(records) == 2
        assert (
            records[0]["metrics"]["perf_per_watt"]
            >= records[1]["metrics"]["perf_per_watt"]
        )

    def test_unknown_workload_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["dse", "--workload", "VGG-99"])
        assert exc.value.code != 0

    def test_missing_spec_file_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["dse", "--spec", str(tmp_path / "absent.json")])
        assert exc.value.code != 0

    @pytest.mark.parametrize(
        "content",
        [
            "not json",
            '"grid"',
            json.dumps(
                {
                    "points": [
                        {
                            "workload": "LSTM",
                            "platform": {"bogus": 1},
                            "memory": "ddr4",
                        }
                    ]
                }
            ),
        ],
        ids=["malformed", "non-object", "bad-platform-fields"],
    )
    def test_bad_spec_contents_exit_cleanly(self, tmp_path, content):
        spec = tmp_path / "bad.json"
        spec.write_text(content)
        with pytest.raises(SystemExit) as exc:
            main(["dse", "--spec", str(spec)])
        assert exc.value.code != 0

    def test_rejects_unknown_platform_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--platform", "gpu"])


class TestPolicyAxisFlag:
    def _axis_file(self, tmp_path):
        axis = tmp_path / "policies.json"
        axis.write_text(
            json.dumps(
                [
                    "homogeneous-8bit",
                    {"layers": [[8, 8], [4, 4]], "label": "searched"},
                    [[2, 2], [2, 2]],
                ]
            )
        )
        return axis

    def test_policy_axis_file_expands_policy_axis(self, capsys, tmp_path):
        out = run(
            capsys,
            "dse",
            "--workload",
            "RNN",
            "--platform",
            "bpvec",
            "--memory",
            "ddr4",
            "--policy-axis",
            str(self._axis_file(tmp_path)),
            "--format",
            "jsonl",
        )
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert [r["policy"] for r in records] == [
            "homogeneous-8bit",
            "perlayer-8x8-4x4",
            "perlayer-2x2-2x2",
        ]

    def test_policy_spelling_variants_deduplicate(self, capsys, tmp_path):
        # "Homogeneous-8BIT" via --policy and "homogeneous-8bit" via the
        # axis file are one axis value, not two duplicate sweep points.
        axis = tmp_path / "axis.json"
        axis.write_text(json.dumps(["homogeneous-8bit"]))
        out = run(
            capsys,
            "dse",
            "--workload",
            "RNN",
            "--platform",
            "bpvec",
            "--memory",
            "ddr4",
            "--policy",
            "Homogeneous-8BIT",
            "--policy-axis",
            str(axis),
            "--format",
            "jsonl",
        )
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert len(records) == 1

    def test_mismatched_per_layer_policy_exits_upfront(self, tmp_path):
        axis = tmp_path / "axis.json"
        axis.write_text(json.dumps([[[8, 8], [4, 4]]]))  # 2-layer policy
        with pytest.raises(SystemExit) as exc:
            main(["dse", "--workload", "LSTM", "--policy-axis", str(axis)])
        assert exc.value.code != 0

    def test_policy_axis_rejected_with_spec(self, tmp_path):
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"grid": {"workloads": ["RNN"]}}))
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "dse",
                    "--spec",
                    str(spec),
                    "--policy-axis",
                    str(self._axis_file(tmp_path)),
                ]
            )
        assert exc.value.code != 0

    @pytest.mark.parametrize("content", ["[]", '"name"', "{}"])
    def test_bad_axis_file_exits_nonzero(self, tmp_path, content):
        axis = tmp_path / "bad.json"
        axis.write_text(content)
        with pytest.raises(SystemExit) as exc:
            main(["dse", "--workload", "RNN", "--policy-axis", str(axis)])
        assert exc.value.code != 0


class TestQuantDseCommand:
    _ARGS = (
        "quant-dse",
        "--workload",
        "RNN",
        "--platform",
        "tpu",
        "--platform",
        "bpvec",
        "--memory",
        "ddr4",
        "--max-drop",
        "0.0",
        "--max-drop",
        "0.05",
    )

    def test_end_to_end_frontier_is_dominated_free(self, capsys):
        """Sensitivity search -> policy axis -> sweep -> Pareto query."""
        out = run(capsys, *self._ARGS, "--format", "jsonl")
        records = [json.loads(line) for line in out.strip().splitlines()]
        # Generated policies went through the sweep as a first-class axis.
        assert all(r["policy"].startswith("perlayer-") for r in records)
        assert all("accuracy" in r["metrics"] for r in records)

        capsys.readouterr()
        frontier_out = run(capsys, *self._ARGS, "--format", "jsonl", "--frontier-only")
        frontier = [json.loads(line) for line in frontier_out.strip().splitlines()]
        assert frontier
        hashes = {r["hash"] for r in records}
        assert {r["hash"] for r in frontier} <= hashes

        def vec(record):
            return (
                record["metrics"]["total_seconds"],
                -record["metrics"]["accuracy"],
            )

        for a in frontier:  # no frontier member dominated by any record
            assert not any(
                all(x <= y for x, y in zip(vec(b), vec(a)))
                and any(x < y for x, y in zip(vec(b), vec(a)))
                for b in records
            )

    def test_vectorized_matches_scalar_byte_identical(self, capsys):
        clear_memo()
        vectorized = run(capsys, *self._ARGS, "--format", "jsonl")
        clear_memo()
        scalar = run(capsys, *self._ARGS, "--format", "jsonl", "--no-vectorize")
        assert scalar == vectorized

    def test_table_output_marks_frontier(self, capsys):
        out = run(capsys, *self._ARGS)
        assert "Searched bitwidth policies" in out
        assert "Pareto frontier" in out
        assert "*" in out
        assert "frontier keeps" in out

    def test_store_reuse_across_runs(self, capsys, tmp_path):
        store = tmp_path / "quant.jsonl"
        clear_memo()
        cold = run(capsys, *self._ARGS, "--store", str(store))
        assert "0 store hits" in cold
        clear_memo()
        warm = run(capsys, *self._ARGS, "--store", str(store))
        assert "0 evaluated" in warm

    def test_unknown_workload_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["quant-dse", "--workload", "VGG-99"])
        assert exc.value.code != 0

    def test_bad_ladder_exits_nonzero(self):
        for ladder in ("a,b", "4,8", "8"):
            with pytest.raises(SystemExit) as exc:
                main(["quant-dse", "--workload", "RNN", "--ladder", ladder])
            assert exc.value.code != 0


class TestDseShardingCommands:
    def _shard_stores(self, capsys, tmp_path):
        paths = []
        for index in range(2):
            clear_memo()  # each shard behaves like a separate machine
            path = tmp_path / f"shard{index}.jsonl"
            run(
                capsys,
                "dse",
                "--workload",
                "LSTM",
                "--workload",
                "RNN",
                "--shard",
                f"{index}/2",
                "--store",
                str(path),
            )
            paths.append(path)
        return paths

    def test_shard_runs_cover_the_sweep(self, capsys, tmp_path):
        from repro.dse import ResultStore

        paths = self._shard_stores(capsys, tmp_path)
        counts = [len(ResultStore(p)) for p in paths]
        assert all(count > 0 for count in counts)
        assert sum(counts) == 12  # 2 workloads x 3 platforms x 2 memories

    def test_merge_then_query_matches_unsharded(self, capsys, tmp_path):
        paths = self._shard_stores(capsys, tmp_path)
        merged = tmp_path / "merged.jsonl"
        out = run(capsys, "dse-merge", str(merged), *map(str, paths))
        assert "12 records" in out
        clear_memo()
        warm = run(
            capsys,
            "dse",
            "--workload",
            "LSTM",
            "--workload",
            "RNN",
            "--store",
            str(merged),
        )
        assert "0 evaluated" in warm and "12 store hits" in warm

    def test_empty_shard_exits_cleanly(self, capsys, tmp_path):
        # A fine partition of a 1-point sweep leaves most shards empty.
        store = tmp_path / "s.jsonl"
        argv = [
            "dse",
            "--workload",
            "LSTM",
            "--platform",
            "bpvec",
            "--memory",
            "ddr4",
            "--store",
            str(store),
        ]
        empties = 0
        for index in range(64):
            assert main(argv + ["--shard", f"{index}/64"]) == 0
            if "owns no points" in capsys.readouterr().err:
                empties += 1
        assert empties == 63

    def test_bad_shard_spec_exits_nonzero(self):
        for shard in ("2", "a/b", "2/2", "0/0"):
            with pytest.raises(SystemExit) as exc:
                main(["dse", "--workload", "LSTM", "--shard", shard])
            assert exc.value.code != 0

    def test_stream_emits_jsonl_records(self, capsys):
        out = run(capsys, "dse", "--workload", "LSTM", "--stream")
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert len(records) == 6  # 3 platforms x 2 memories
        assert all("metrics" in r for r in records)

    def test_stream_rejects_batch_queries(self):
        with pytest.raises(SystemExit):
            main(["dse", "--workload", "LSTM", "--stream", "--pareto"])

    def test_stream_rejects_json_format(self):
        # --stream emits JSONL by nature; a single-document --format
        # json request must error, not silently emit the wrong shape.
        with pytest.raises(SystemExit):
            main(["dse", "--workload", "LSTM", "--stream", "--format", "json"])

    def test_compact_shrinks_duplicated_store(self, capsys, tmp_path):
        store = tmp_path / "s.jsonl"
        argv = (
            "dse",
            "--workload",
            "LSTM",
            "--platform",
            "bpvec",
            "--memory",
            "ddr4",
            "--store",
            str(store),
        )
        clear_memo()
        run(capsys, *argv)
        clear_memo()  # force a store hit... then duplicate the line
        store.write_text(store.read_text() * 3)
        out = run(capsys, "dse-compact", str(store))
        assert "kept 1 records, dropped 2 superseded lines" in out

    def test_compact_gzip_roundtrips_through_engine(self, capsys, tmp_path):
        from repro.dse import ResultStore

        store = tmp_path / "s.jsonl"
        argv = (
            "dse",
            "--workload",
            "LSTM",
            "--platform",
            "bpvec",
            "--memory",
            "ddr4",
            "--store",
            str(store),
        )
        clear_memo()
        run(capsys, *argv)
        run(capsys, "dse-compact", str(store), "--gzip")
        assert ResultStore(store).is_gzipped()
        clear_memo()
        warm = run(capsys, *argv)
        assert "1 store hits" in warm

    def test_compact_missing_store_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["dse-compact", str(tmp_path / "absent.jsonl")])
        assert exc.value.code != 0


class TestStoreBackendFlags:
    """--backend / suffix-sniffed SQLite stores through every subcommand."""

    _ARGS = ("dse", "--workload", "RNN", "--platform", "bpvec", "--memory", "ddr4")

    def test_sqlite_suffix_store_warm_rerun(self, capsys, tmp_path):
        store = tmp_path / "results.sqlite"
        clear_memo()
        cold = run(capsys, *self._ARGS, "--store", str(store))
        assert "1 evaluated" in cold
        clear_memo()
        warm = run(capsys, *self._ARGS, "--store", str(store))
        assert "0 evaluated" in warm and "1 store hits" in warm

    def test_backend_flag_forces_sqlite_on_any_suffix(self, capsys, tmp_path):
        from repro.dse import SQLiteStore, open_store

        store = tmp_path / "results.dat"
        clear_memo()
        run(capsys, *self._ARGS, "--store", str(store), "--backend", "sqlite")
        # Magic-byte sniffing reopens the mis-suffixed store correctly.
        assert isinstance(open_store(store), SQLiteStore)
        clear_memo()
        warm = run(capsys, *self._ARGS, "--store", str(store))
        assert "1 store hits" in warm

    def test_merge_jsonl_shards_into_sqlite_dest(self, capsys, tmp_path):
        shard = tmp_path / "shard.jsonl"
        clear_memo()
        run(capsys, *self._ARGS, "--store", str(shard))
        dest = tmp_path / "merged.sqlite"
        out = run(capsys, "dse-merge", str(dest), str(shard))
        assert "1 records" in out
        clear_memo()
        warm = run(capsys, *self._ARGS, "--store", str(dest))
        assert "1 store hits" in warm

    def test_compact_sqlite_store(self, capsys, tmp_path):
        store = tmp_path / "s.sqlite"
        clear_memo()
        run(capsys, *self._ARGS, "--store", str(store))
        out = run(capsys, "dse-compact", str(store))
        assert "kept 1 records" in out

    def test_compact_sqlite_rejects_gzip(self, capsys, tmp_path):
        store = tmp_path / "s.sqlite"
        clear_memo()
        run(capsys, *self._ARGS, "--store", str(store))
        with pytest.raises(SystemExit) as exc:
            main(["dse-compact", str(store), "--gzip"])
        assert exc.value.code != 0

    def test_quant_dse_sqlite_store_reuse(self, capsys, tmp_path):
        store = tmp_path / "quant.sqlite"
        argv = (
            "quant-dse", "--workload", "RNN", "--platform", "bpvec",
            "--memory", "ddr4", "--max-drop", "0.05", "--store", str(store),
        )
        clear_memo()
        run(capsys, *argv)
        clear_memo()
        warm = run(capsys, *argv)
        assert "0 evaluated" in warm


class TestJsonFormat:
    """--format json: the shared machine-readable payload shape."""

    def test_dse_json_payload(self, capsys):
        out = run(
            capsys, "dse", "--workload", "LSTM", "--platform", "bpvec",
            "--memory", "ddr4", "--format", "json",
        )
        payload = json.loads(out)
        assert payload["count"] == 1
        assert payload["records"][0]["workload"] == "LSTM"
        summary = payload["summary"]
        assert summary["points"] == summary["unique_points"] == 1
        assert {"evaluated", "store_hits", "memo_hits"} <= set(summary)

    def test_dse_json_matches_jsonl_records(self, capsys):
        argv = ("dse", "--workload", "RNN", "--platform", "tpu")
        from_json = json.loads(run(capsys, *argv, "--format", "json"))
        jsonl = [
            json.loads(line)
            for line in run(capsys, *argv, "--format", "jsonl").splitlines()
        ]
        assert from_json["records"] == jsonl

    def test_quant_dse_json_payload(self, capsys):
        out = run(
            capsys, "quant-dse", "--workload", "RNN", "--platform", "bpvec",
            "--memory", "ddr4", "--max-drop", "0.0", "--max-drop", "0.05",
            "--format", "json",
        )
        payload = json.loads(out)
        assert payload["workload"] == "RNN"
        assert payload["policies"]
        assert {"label", "policy", "accuracy", "bits_per_layer"} <= set(
            payload["policies"][0]
        )
        frontier_hashes = {r["hash"] for r in payload["frontier"]}
        assert frontier_hashes <= {r["hash"] for r in payload["records"]}

    def test_quant_dse_json_frontier_only_omits_records(self, capsys):
        out = run(
            capsys, "quant-dse", "--workload", "RNN", "--platform", "bpvec",
            "--memory", "ddr4", "--max-drop", "0.05",
            "--format", "json", "--frontier-only",
        )
        payload = json.loads(out)
        assert payload["records"] == [] and payload["count"] == 0
        assert payload["frontier"]
        assert payload["summary"]["points"] > 0


class TestExitCodes:
    """Every covered subcommand returns 0 on success."""

    @pytest.mark.parametrize(
        "argv",
        [
            ("report",),
            ("simulate", "--model", "LSTM"),
            ("roofline", "--model", "LSTM"),
            ("dse", "--workload", "LSTM", "--platform", "bpvec", "--memory", "ddr4"),
        ],
        ids=["report", "simulate", "roofline", "dse"],
    )
    def test_returns_zero(self, capsys, argv):
        assert main(list(argv)) == 0
        assert capsys.readouterr().out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        out = run(capsys, "report")
        assert "# BPVeC reproduction report" in out
        assert "Figure 9" in out and "GEOMEAN" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        out = run(capsys, "report", "--output", str(target))
        assert "wrote" in out
        text = target.read_text()
        assert text.count("## ") == 9
