"""Tests for bitwidth policies as first-class sweep-axis values."""

import json

import pytest

from repro.dse import (
    PolicySpec,
    SweepPoint,
    SweepSpec,
    accuracy_perf_frontier,
    attach_policy_metric,
    co_explore,
    evaluate_point,
    evaluate_points,
    policy_name,
    resolve_policy,
    run_sweep,
    sensitivity_policies,
)
from repro.hw import BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import rnn_workload


class TestPolicySpec:
    def test_canonical_name(self):
        spec = PolicySpec(layers=((8, 8), (4, 4), (2, 6)))
        assert spec.name == "perlayer-8x8-4x4-2x6"
        assert spec.num_layers == 3

    def test_name_round_trip(self):
        spec = PolicySpec(layers=((8, 2), (3, 7)))
        assert PolicySpec.from_name(spec.name) == spec

    def test_lists_and_ints_canonicalize(self):
        # JSON round-trips turn tuples into lists; assign_bitwidths
        # emits bare ints.  All spellings are one spec.
        reference = PolicySpec(layers=((4, 4), (8, 8)))
        assert PolicySpec(layers=[[4, 4], [8, 8]]) == reference
        assert PolicySpec(layers=[4, 8]) == reference
        assert hash(PolicySpec(layers=[[4, 4], (8, 8)])) == hash(reference)

    def test_bool_entries_coerce_to_int(self):
        # bool is an int subclass; True must canonicalize as 1, not
        # render an unparseable "perlayer-TruexTrue" name.
        assert PolicySpec(layers=[True, 2]) == PolicySpec(layers=[1, 2])
        assert PolicySpec(layers=[True, 2]).name == "perlayer-1x1-2x2"

    def test_label_is_not_identity(self):
        a = PolicySpec(layers=((8, 8),), label="a")
        b = PolicySpec(layers=((8, 8),), label="b")
        assert a == b and hash(a) == hash(b) and a.name == b.name

    def test_dict_round_trip(self):
        spec = PolicySpec(layers=((8, 8), (4, 2)), label="searched")
        reloaded = PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reloaded == spec
        assert reloaded.label == "searched"

    def test_from_assignment(self):
        spec = PolicySpec.from_assignment((8, 4, 2))
        assert spec.layers == ((8, 8), (4, 4), (2, 2))
        asym = PolicySpec.from_assignment((8, 4), bits_activations=(2, 6))
        assert asym.layers == ((2, 8), (6, 4))

    def test_average_bits(self):
        assert PolicySpec(layers=((8, 8), (4, 4))).average_bits == 6.0
        assert PolicySpec(layers=((2, 6),)).average_bits == 4.0

    def test_apply_assigns_in_layer_order(self):
        network = rnn_workload()
        PolicySpec(layers=((8, 2), (4, 4))).apply(network)
        first, second = network.weighted_layers
        assert network.bitwidth(first.name).activations == 8
        assert network.bitwidth(first.name).weights == 2
        assert network.bitwidth(second.name).activations == 4

    def test_apply_rejects_layer_count_mismatch(self):
        with pytest.raises(ValueError, match="weighted layers"):
            PolicySpec(layers=((8, 8),)).apply(rnn_workload())

    @pytest.mark.parametrize(
        "layers",
        [(), ((0, 8),), ((8, 9),), ((8, 8, 8),)],
        ids=["empty", "too-narrow", "too-wide", "triple"],
    )
    def test_invalid_layers_rejected(self, layers):
        with pytest.raises(ValueError):
            PolicySpec(layers=layers)

    @pytest.mark.parametrize(
        "name", ["perlayer-", "perlayer-8", "uniform-4x4", "perlayer-8x8x8"]
    )
    def test_bad_names_rejected(self, name):
        with pytest.raises(ValueError):
            PolicySpec.from_name(name)


class TestPolicyName:
    def test_string_passthrough_lowercases(self):
        assert policy_name("Homogeneous-8BIT") == "homogeneous-8bit"

    def test_spec_dict_and_sequence_forms(self):
        spec = PolicySpec(layers=((8, 8), (4, 4)))
        assert policy_name(spec) == spec.name
        assert policy_name({"layers": [[8, 8], [4, 4]]}) == spec.name
        assert policy_name([[8, 8], [4, 4]]) == spec.name

    def test_non_canonical_perlayer_spellings_canonicalize(self):
        # One spelling, one config hash: zero-padded or upper-cased
        # per-layer names must not split the store's cache lines.
        assert policy_name("perlayer-08x8-4x04") == "perlayer-8x8-4x4"
        assert policy_name("PERLAYER-8X8-4X4") == "perlayer-8x8-4x4"
        kwargs = dict(workload="RNN", platform=BPVEC, memory=DDR4)
        assert (
            SweepPoint(policy="perlayer-08x8-4x4", **kwargs).config_hash()
            == SweepPoint(policy="perlayer-8x8-4x4", **kwargs).config_hash()
        )

    def test_rejects_unusable_values(self):
        with pytest.raises(TypeError):
            policy_name(42)


class TestResolvePolicy:
    def test_perlayer_names_resolve_anywhere(self):
        applier = resolve_policy("perlayer-8x8-4x4")
        network = applier(rnn_workload())
        assert network.is_heterogeneous

    def test_policy_spec_resolves_directly(self):
        spec = PolicySpec(layers=((4, 4), (4, 4)))
        assert resolve_policy(spec) is spec

    def test_unknown_perlayer_shape_raises_key_error(self):
        with pytest.raises(KeyError):
            resolve_policy("perlayer-bogus")


class TestSweepPointPolicyAxis:
    def test_all_spellings_share_one_config_hash(self):
        kwargs = dict(workload="RNN", platform=BPVEC, memory=DDR4)
        spec = PolicySpec(layers=((8, 8), (4, 4)))
        points = [
            SweepPoint(policy=spec, **kwargs),
            SweepPoint(policy="perlayer-8x8-4x4", **kwargs),
            SweepPoint(policy=[[8, 8], [4, 4]], **kwargs),
            SweepPoint(policy={"layers": [[8, 8], [4, 4]]}, **kwargs),
        ]
        hashes = {point.config_hash() for point in points}
        assert len(hashes) == 1
        assert all(point.policy == spec.name for point in points)

    def test_named_policy_hashes_unchanged(self):
        # Pinned: extending the policy axis must not move existing
        # config hashes (EVAL_VERSION stays 1, stores stay warm).
        point = SweepPoint(workload="LSTM", platform=BPVEC, memory=DDR4)
        assert point.policy == "homogeneous-8bit"
        assert (
            point.config_hash()
            == "01b12a9a9158820582ed62f821545bdd7bc5d561ccc664b16813060b42c8798c"
        )

    def test_grid_accepts_policy_specs(self):
        spec = SweepSpec.grid(
            workloads=("RNN",),
            platforms=("bpvec",),
            memories=("ddr4",),
            policies=(PolicySpec(layers=((8, 8), (4, 4))), "homogeneous-8bit"),
        )
        assert [point.policy for point in spec] == [
            "perlayer-8x8-4x4",
            "homogeneous-8bit",
        ]

    def test_from_dict_accepts_policy_dicts(self):
        spec = SweepSpec.from_dict(
            {
                "grid": {
                    "workloads": ["RNN"],
                    "platforms": ["bpvec"],
                    "memories": ["ddr4"],
                    "policies": [
                        "uniform-4x4",
                        {"layers": [[8, 8], [2, 2]]},
                        [[4, 2], [2, 4]],
                    ],
                }
            }
        )
        assert [point.policy for point in spec] == [
            "uniform-4x4",
            "perlayer-8x8-2x2",
            "perlayer-4x2-2x4",
        ]

    def test_layer_count_mismatch_fails_at_construction(self):
        # A multi-workload grid crossed with one workload's policy axis
        # must error upfront, not abort mid-sweep after partial records.
        with pytest.raises(ValueError, match="weighted layers"):
            SweepPoint(
                workload="LSTM",  # 1 weighted layer
                policy="perlayer-8x8-4x4",
                platform=BPVEC,
                memory=DDR4,
            )

    def test_point_from_dict_with_per_layer_policy(self):
        spec = SweepSpec.from_dict(
            {
                "points": [
                    {
                        "workload": "RNN",
                        "platform": "bpvec",
                        "memory": "ddr4",
                        "policy": {"layers": [[8, 8], [4, 4]]},
                    }
                ]
            }
        )
        assert spec.points[0].policy == "perlayer-8x8-4x4"


class TestVectorizedPolicyEvaluation:
    def test_arbitrary_policy_scalar_vs_vectorized_bit_identical(self):
        points = [
            SweepPoint(
                workload="RNN",
                policy="perlayer-3x5-6x2",
                platform=platform,
                memory=memory,
                batch=1,
            )
            for platform in (TPU_LIKE, BPVEC)
            for memory in (DDR4, HBM2)
        ]
        scalar = [evaluate_point(point) for point in points]
        assert evaluate_points(points) == scalar

    def test_mixed_policy_chunk_groups_correctly(self):
        points = [
            SweepPoint(
                workload="RNN", policy=policy, platform=BPVEC, memory=DDR4, batch=1
            )
            for policy in (
                "homogeneous-8bit",
                "perlayer-8x8-4x4",
                "perlayer-4x4-8x8",
            )
        ]
        records = evaluate_points(points)
        assert [r["policy"] for r in records] == [p.policy for p in points]
        assert records == [evaluate_point(p) for p in points]


class TestCachedNetworkPolicyForms:
    def test_cached_network_accepts_policy_specs(self):
        from repro.dse import cached_network

        spec = PolicySpec(layers=((8, 8), (4, 4)))
        by_spec = cached_network("RNN", 1, spec)
        by_name = cached_network("RNN", 1, spec.name)
        assert by_spec is by_name  # one cache line, not a repr-keyed miss
        assert by_spec.is_heterogeneous


class TestAccuracyPerfQueries:
    def _records(self):
        spec = SweepSpec.grid(
            workloads=("RNN",),
            platforms=("tpu", "bpvec"),
            memories=("ddr4",),
            policies=("perlayer-8x8-8x8", "perlayer-4x4-4x4"),
        )
        return run_sweep(spec).records

    def test_attach_policy_metric_copies_records(self):
        records = self._records()
        accuracy = {"perlayer-8x8-8x8": 0.9, "perlayer-4x4-4x4": 0.8}
        augmented = attach_policy_metric(records, accuracy)
        for original, joined in zip(records, augmented):
            assert "accuracy" not in original["metrics"]  # memo untouched
            assert joined["metrics"]["accuracy"] == accuracy[joined["policy"]]

    def test_attach_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="no accuracy known"):
            attach_policy_metric(self._records(), {"perlayer-8x8-8x8": 0.9})

    def test_frontier_is_dominated_free(self):
        records = self._records()
        accuracy = {"perlayer-8x8-8x8": 0.9, "perlayer-4x4-4x4": 0.8}
        frontier = accuracy_perf_frontier(records, accuracy)
        assert frontier
        for a in frontier:
            for b in frontier:
                dominates = (
                    b["metrics"]["total_seconds"] <= a["metrics"]["total_seconds"]
                    and b["metrics"]["accuracy"] >= a["metrics"]["accuracy"]
                    and (
                        b["metrics"]["total_seconds"]
                        < a["metrics"]["total_seconds"]
                        or b["metrics"]["accuracy"] > a["metrics"]["accuracy"]
                    )
                )
                assert not dominates


class TestSensitivityPolicies:
    def test_budget_ladder_produces_annotated_policies(self):
        policies = sensitivity_policies(2, max_drops=(0.0, 0.1), epochs=150)
        assert len(policies) == 3  # baseline + one per budget
        baseline = policies[0]
        assert baseline.policy == "perlayer-8x8-8x8"
        assert baseline.search_steps == 0
        for entry in policies:
            assert entry.spec.num_layers == 2
            assert 0.0 <= entry.accuracy <= 1.0
        # A looser budget can only narrow further (monotone search).
        assert policies[2].spec.average_bits <= policies[1].spec.average_bits

    def test_deep_workloads_search_a_capped_proxy(self):
        # A 54-layer proxy MLP would not train (and its composed 8-bit
        # baseline would sit below every accuracy floor, degenerating
        # the search to all-wide); deep workloads search a capped-depth
        # proxy and stretch the assignment nearest-neighbor.
        policies = sensitivity_policies(54, max_drops=(0.1,), epochs=150)
        for entry in policies:
            assert entry.spec.num_layers == 54
        baseline, searched = policies[0], policies[-1]
        # The proxy trained: its 8-bit baseline is far above chance.
        assert baseline.accuracy > 0.6
        # And the generous budget actually narrowed something.
        assert searched.search_steps >= 1
        assert any(b < 8 for b in searched.bits_per_layer)

    def test_validation(self):
        with pytest.raises(ValueError):
            sensitivity_policies(0)
        with pytest.raises(ValueError):
            sensitivity_policies(2, max_drops=())


class TestCoExplore:
    def test_end_to_end_frontier(self, tmp_path):
        store = tmp_path / "coexplore.jsonl"
        result = co_explore(
            "RNN",
            platforms=("tpu", "bpvec"),
            memories=("ddr4",),
            max_drops=(0.0, 0.05),
            store=store,
        )
        axis = {p.policy for p in result.policies}
        assert len(result.records) == 2 * len(axis)
        assert result.frontier
        frontier_hashes = {r["hash"] for r in result.frontier}
        assert frontier_hashes <= {r["hash"] for r in result.records}
        # Records and frontier share one shape: accuracy joined in both.
        assert all("accuracy" in r["metrics"] for r in result.records)
        assert all("accuracy" in r["metrics"] for r in result.frontier)
        assert store.exists()
        assert "frontier" in result.summary()

    def test_deterministic_under_seed(self):
        first = co_explore(
            "RNN", platforms=("bpvec",), memories=("ddr4",), max_drops=(0.02,)
        )
        second = co_explore(
            "RNN", platforms=("bpvec",), memories=("ddr4",), max_drops=(0.02,)
        )
        assert [p.policy for p in first.policies] == [p.policy for p in second.policies]
        assert first.records == second.records
