"""Tests for the sweep engine: caching tiers, dedup, multiprocessing."""

import pytest

from repro.dse import (
    EVAL_VERSION,
    DSEEngine,
    ResultStore,
    SweepPoint,
    SweepSpec,
    clear_memo,
    evaluate_point,
    run_sweep,
)
from repro.hw import BPVEC, DDR4, HBM2, TPU_LIKE


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _points(*workloads, platform=BPVEC, memory=DDR4, batch=1):
    return [
        SweepPoint(workload=w, platform=platform, memory=memory, batch=batch)
        for w in workloads
    ]


class TestRunSweep:
    def test_records_in_point_order(self):
        points = _points("LSTM", "RNN") + _points("LSTM", memory=HBM2)
        result = run_sweep(points)
        assert [r["workload"] for r in result.records] == ["LSTM", "RNN", "LSTM"]
        assert [r["memory"] for r in result.records] == ["DDR4", "DDR4", "HBM2"]

    def test_accepts_spec_and_iterable(self):
        spec = SweepSpec.grid(
            workloads=("LSTM",), platforms=("bpvec",), memories=("ddr4",)
        )
        assert run_sweep(spec).records == run_sweep(list(spec.points)).records

    def test_duplicates_evaluated_once(self):
        points = _points("LSTM", "LSTM", "LSTM")
        result = run_sweep(points)
        assert result.evaluated == 1
        assert len(result.records) == 3
        assert result.records[0] is result.records[1] is result.records[2]

    def test_memo_hit_on_second_run(self):
        points = _points("LSTM")
        first = run_sweep(points)
        second = run_sweep(points)
        assert first.evaluated == 1
        assert (second.evaluated, second.from_memo) == (0, 1)
        assert second.records == first.records

    def test_store_warm_skip(self, tmp_path):
        store = tmp_path / "s.jsonl"
        points = _points("LSTM", "RNN")
        cold = run_sweep(points, store=store)
        clear_memo()
        warm = run_sweep(points, store=store)
        assert cold.evaluated == 2
        assert (warm.evaluated, warm.from_store) == (0, 2)
        assert warm.records == cold.records  # bit-identical through JSON

    def test_memo_hits_still_persisted_to_store(self, tmp_path):
        """A sweep warmed by the memo must still fill a fresh store."""
        points = _points("LSTM")
        run_sweep(points)  # memo only, no store
        store = ResultStore(tmp_path / "s.jsonl")
        result = run_sweep(points, store=store)
        assert result.from_memo == 1
        assert len(store) == 1
        clear_memo()
        warm = run_sweep(points, store=store)
        assert (warm.evaluated, warm.from_store) == (0, 1)

    def test_store_extends_incrementally(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_sweep(_points("LSTM"), store=store)
        clear_memo()
        result = run_sweep(_points("LSTM", "RNN"), store=store)
        assert result.evaluated == 1
        assert result.from_store == 1
        assert len(store) == 2

    def test_stale_version_reevaluated(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        (point,) = _points("LSTM")
        record = dict(evaluate_point(point), version=EVAL_VERSION - 1)
        store.append([record])
        result = run_sweep([point], store=store)
        assert result.evaluated == 1
        assert store.load()[point.config_hash()]["version"] == EVAL_VERSION

    def test_multiprocessing_matches_serial(self, tmp_path):
        spec = SweepSpec.grid(
            workloads=("LSTM", "RNN", "AlexNet"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            batches=(1,),
        )
        serial = run_sweep(spec)
        clear_memo()
        parallel = run_sweep(spec, workers=2)
        assert parallel.records == serial.records
        assert parallel.evaluated == len(spec)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([])

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_sweep(_points("LSTM"), workers=0)

    def test_summary_mentions_tiers(self):
        result = run_sweep(_points("LSTM"))
        text = result.summary()
        assert "evaluated" in text and "store" in text and "memo" in text
        assert result.unique_points == 1


class TestRecords:
    def test_asic_record_shape(self):
        (record,) = run_sweep(_points("LSTM")).records
        assert record["kind"] == "asic"
        assert record["platform"] == "BPVeC"
        assert record["memory"] == "DDR4"
        assert record["version"] == EVAL_VERSION
        for key in (
            "total_cycles",
            "total_seconds",
            "total_energy_pj",
            "total_energy_j",
            "perf_per_watt",
            "memory_bound_fraction",
        ):
            assert key in record["metrics"]

    def test_gpu_record_shape(self):
        from repro.baselines.gpu import RTX_2080_TI

        point = SweepPoint(
            workload="LSTM", gpu=RTX_2080_TI, gpu_precision=4, batch=1
        )
        (record,) = run_sweep([point]).records
        assert record["kind"] == "gpu"
        assert record["platform"] == "RTX 2080 TI"
        assert record["memory"] is None
        for key in ("total_seconds", "total_energy_j", "perf_per_watt"):
            assert key in record["metrics"]

    def test_record_matches_direct_simulation(self):
        from repro.dse import build_network, resolve_policy
        from repro.sim import simulate_network

        (record,) = run_sweep(_points("RNN", batch=4)).records
        net = build_network("RNN", batch=4)
        resolve_policy("homogeneous-8bit")(net)
        direct = simulate_network(net, BPVEC, DDR4)
        assert record["metrics"]["total_seconds"] == direct.total_seconds
        assert record["metrics"]["total_energy_pj"] == direct.total_energy_pj
        assert record["metrics"]["perf_per_watt"] == direct.perf_per_watt


class TestDSEEngine:
    def test_engine_wraps_run_sweep(self, tmp_path):
        engine = DSEEngine(store=tmp_path / "s.jsonl", workers=1)
        spec = SweepSpec.grid(
            workloads=("LSTM",), platforms=("bpvec",), memories=("ddr4",)
        )
        cold = engine.run(spec)
        clear_memo()
        warm = engine.run(spec)
        assert cold.evaluated == 1
        assert warm.from_store == 1
        assert warm.records == cold.records
