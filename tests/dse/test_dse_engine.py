"""Tests for the sweep engine: caching tiers, dedup, multiprocessing,
and the streaming ``iter_sweep`` API the batch API is built on."""

import pytest

from repro.dse import (
    EVAL_VERSION,
    DSEEngine,
    ResultStore,
    SweepPoint,
    SweepSpec,
    clear_memo,
    evaluate_point,
    iter_sweep,
    run_sweep,
)
from repro.hw import BPVEC, DDR4, HBM2


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _points(*workloads, platform=BPVEC, memory=DDR4, batch=1):
    return [
        SweepPoint(workload=w, platform=platform, memory=memory, batch=batch)
        for w in workloads
    ]


class TestRunSweep:
    def test_records_in_point_order(self):
        points = _points("LSTM", "RNN") + _points("LSTM", memory=HBM2)
        result = run_sweep(points)
        assert [r["workload"] for r in result.records] == ["LSTM", "RNN", "LSTM"]
        assert [r["memory"] for r in result.records] == ["DDR4", "DDR4", "HBM2"]

    def test_accepts_spec_and_iterable(self):
        spec = SweepSpec.grid(
            workloads=("LSTM",), platforms=("bpvec",), memories=("ddr4",)
        )
        assert run_sweep(spec).records == run_sweep(list(spec.points)).records

    def test_duplicates_evaluated_once(self):
        points = _points("LSTM", "LSTM", "LSTM")
        result = run_sweep(points)
        assert result.evaluated == 1
        assert len(result.records) == 3
        assert result.records[0] is result.records[1] is result.records[2]

    def test_memo_hit_on_second_run(self):
        points = _points("LSTM")
        first = run_sweep(points)
        second = run_sweep(points)
        assert first.evaluated == 1
        assert (second.evaluated, second.from_memo) == (0, 1)
        assert second.records == first.records

    def test_store_warm_skip(self, tmp_path):
        store = tmp_path / "s.jsonl"
        points = _points("LSTM", "RNN")
        cold = run_sweep(points, store=store)
        clear_memo()
        warm = run_sweep(points, store=store)
        assert cold.evaluated == 2
        assert (warm.evaluated, warm.from_store) == (0, 2)
        assert warm.records == cold.records  # bit-identical through JSON

    def test_memo_hits_still_persisted_to_store(self, tmp_path):
        """A sweep warmed by the memo must still fill a fresh store."""
        points = _points("LSTM")
        run_sweep(points)  # memo only, no store
        store = ResultStore(tmp_path / "s.jsonl")
        result = run_sweep(points, store=store)
        assert result.from_memo == 1
        assert len(store) == 1
        clear_memo()
        warm = run_sweep(points, store=store)
        assert (warm.evaluated, warm.from_store) == (0, 1)

    def test_store_extends_incrementally(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_sweep(_points("LSTM"), store=store)
        clear_memo()
        result = run_sweep(_points("LSTM", "RNN"), store=store)
        assert result.evaluated == 1
        assert result.from_store == 1
        assert len(store) == 2

    def test_stale_version_reevaluated(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        (point,) = _points("LSTM")
        record = dict(evaluate_point(point), version=EVAL_VERSION - 1)
        store.append([record])
        result = run_sweep([point], store=store)
        assert result.evaluated == 1
        assert store.load()[point.config_hash()]["version"] == EVAL_VERSION

    def test_multiprocessing_matches_serial(self, tmp_path):
        spec = SweepSpec.grid(
            workloads=("LSTM", "RNN", "AlexNet"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            batches=(1,),
        )
        serial = run_sweep(spec)
        clear_memo()
        parallel = run_sweep(spec, workers=2)
        assert parallel.records == serial.records
        assert parallel.evaluated == len(spec)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([])

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_sweep(_points("LSTM"), workers=0)

    def test_summary_mentions_tiers(self):
        result = run_sweep(_points("LSTM"))
        text = result.summary()
        assert "evaluated" in text and "store" in text and "memo" in text
        assert result.unique_points == 1


class TestRecords:
    def test_asic_record_shape(self):
        (record,) = run_sweep(_points("LSTM")).records
        assert record["kind"] == "asic"
        assert record["platform"] == "BPVeC"
        assert record["memory"] == "DDR4"
        assert record["version"] == EVAL_VERSION
        for key in (
            "total_cycles",
            "total_seconds",
            "total_energy_pj",
            "total_energy_j",
            "perf_per_watt",
            "memory_bound_fraction",
        ):
            assert key in record["metrics"]

    def test_gpu_record_shape(self):
        from repro.baselines.gpu import RTX_2080_TI

        point = SweepPoint(
            workload="LSTM", gpu=RTX_2080_TI, gpu_precision=4, batch=1
        )
        (record,) = run_sweep([point]).records
        assert record["kind"] == "gpu"
        assert record["platform"] == "RTX 2080 TI"
        assert record["memory"] is None
        for key in ("total_seconds", "total_energy_j", "perf_per_watt"):
            assert key in record["metrics"]

    def test_record_matches_direct_simulation(self):
        from repro.dse import build_network, resolve_policy
        from repro.sim import simulate_network

        (record,) = run_sweep(_points("RNN", batch=4)).records
        net = build_network("RNN", batch=4)
        resolve_policy("homogeneous-8bit")(net)
        direct = simulate_network(net, BPVEC, DDR4)
        assert record["metrics"]["total_seconds"] == direct.total_seconds
        assert record["metrics"]["total_energy_pj"] == direct.total_energy_pj
        assert record["metrics"]["perf_per_watt"] == direct.perf_per_watt


class TestIterSweep:
    def test_yields_every_unique_record_of_run_sweep(self):
        points = _points("LSTM", "RNN", "LSTM") + _points("LSTM", memory=HBM2)
        batch = run_sweep(points)
        by_hash = {r["hash"]: r for r in batch.records}
        clear_memo()
        streamed = list(iter_sweep(points))
        assert len(streamed) == 3  # unique configs only
        assert {sr.hash for sr in streamed} == set(by_hash)
        assert all(sr.record == by_hash[sr.hash] for sr in streamed)

    def test_cache_hits_stream_before_cold_evaluations(self):
        warm_points = _points("LSTM")
        run_sweep(warm_points)  # prime the memo
        sources = [
            sr.source for sr in iter_sweep(warm_points + _points("RNN"))
        ]
        assert sources == ["memo", "evaluated"]

    def test_store_hits_stream_first(self, tmp_path):
        store = tmp_path / "s.jsonl"
        run_sweep(_points("LSTM"), store=store)
        clear_memo()
        sources = [
            sr.source
            for sr in iter_sweep(_points("RNN", "LSTM"), store=store)
        ]
        assert sources == ["store", "evaluated"]

    def test_indices_point_at_first_occurrence(self):
        points = _points("LSTM", "LSTM", "RNN")
        indices = {sr.record["workload"]: sr.index for sr in iter_sweep(points)}
        assert indices == {"LSTM": 0, "RNN": 2}

    def test_records_appended_to_store_as_they_complete(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        stream = iter_sweep(_points("LSTM", "RNN"), store=store)
        next(stream)
        assert len(store) == 1  # first record persisted before the second runs
        stream.close()  # abandoning the stream keeps what finished
        assert len(store) == 1
        clear_memo()
        warm = run_sweep(_points("LSTM", "RNN"), store=store)
        assert (warm.evaluated, warm.from_store) == (1, 1)

    def test_empty_sweep_streams_nothing(self):
        assert list(iter_sweep([])) == []
        assert list(iter_sweep(SweepSpec(points=()))) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            list(iter_sweep(_points("LSTM"), workers=0))

    def test_multiprocessing_stream_completion_order(self, tmp_path):
        spec = SweepSpec.grid(
            workloads=("LSTM", "RNN", "AlexNet"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            batches=(1,),
        )
        serial = run_sweep(spec)
        clear_memo()
        streamed = list(iter_sweep(spec, workers=2, chunk_size=1))
        assert {sr.hash for sr in streamed} == {
            r["hash"] for r in serial.records
        }
        by_hash = {r["hash"]: r for r in serial.records}
        for sr in streamed:
            assert sr.record == by_hash[sr.hash]


class TestShardedRuns:
    def test_two_shard_run_merges_to_unsharded_result(self, tmp_path):
        spec = SweepSpec.grid(
            workloads=("LSTM", "RNN"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            batches=(1, 2),
        )
        single = ResultStore(tmp_path / "single.jsonl")
        full = run_sweep(spec, store=single)

        shard_paths = []
        for index in range(2):
            clear_memo()  # each shard behaves like its own machine
            shard = spec.shard(index, 2)
            path = tmp_path / f"shard{index}.jsonl"
            result = run_sweep(shard, store=path)
            assert result.evaluated == len(shard)
            shard_paths.append(path)

        merged = ResultStore(tmp_path / "merged.jsonl")
        merged.merge(shard_paths)
        assert merged.load() == single.load()

        from repro.dse import pareto_frontier

        merged_front = pareto_frontier(list(merged.load().values()))
        single_front = pareto_frontier(list(single.load().values()))
        assert {r["hash"] for r in merged_front} == {
            r["hash"] for r in single_front
        }

        clear_memo()
        warm = run_sweep(spec, store=merged)
        assert (warm.evaluated, warm.from_store) == (0, len(spec))
        assert warm.records == full.records


class TestDSEEngine:
    def test_engine_wraps_run_sweep(self, tmp_path):
        engine = DSEEngine(store=tmp_path / "s.jsonl", workers=1)
        spec = SweepSpec.grid(
            workloads=("LSTM",), platforms=("bpvec",), memories=("ddr4",)
        )
        cold = engine.run(spec)
        clear_memo()
        warm = engine.run(spec)
        assert cold.evaluated == 1
        assert warm.from_store == 1
        assert warm.records == cold.records

    def test_engine_iter_sweep_streams_with_store(self, tmp_path):
        engine = DSEEngine(store=tmp_path / "s.jsonl")
        streamed = list(engine.iter_sweep(_points("LSTM", "RNN")))
        assert [sr.source for sr in streamed] == ["evaluated", "evaluated"]
        clear_memo()
        warm = list(engine.iter_sweep(_points("LSTM", "RNN")))
        assert [sr.source for sr in warm] == ["store", "store"]
        assert [sr.record for sr in warm] == [sr.record for sr in streamed]


class TestVectorizedEvaluation:
    """The vectorized default and the --no-vectorize escape hatch agree."""

    def _grid(self):
        return SweepSpec.grid(
            workloads=("AlexNet", "RNN", "LSTM"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            policies=("homogeneous-8bit", "paper-heterogeneous"),
            batches=(1, 4),
        )

    def test_scalar_escape_hatch_bit_identical(self):
        spec = self._grid()
        vectorized = run_sweep(spec, vectorize=True)
        clear_memo()
        scalar = run_sweep(spec, vectorize=False)
        assert vectorized.records == scalar.records
        assert vectorized.evaluated == scalar.evaluated == len(spec)

    def test_vectorized_pool_matches_serial(self):
        spec = self._grid()
        serial = run_sweep(spec, vectorize=True)
        clear_memo()
        pooled = run_sweep(spec, workers=4, vectorize=True)
        assert pooled.records == serial.records
        assert pooled.evaluated == len(spec)

    def test_chunks_respect_chunk_size(self):
        spec = self._grid()
        result = run_sweep(spec, chunk_size=1)
        clear_memo()
        default = run_sweep(spec)
        assert result.records == default.records

    def test_mixed_gpu_and_asic_chunk(self):
        from repro.dse import resolve_gpu

        points = _points("LSTM", "RNN")
        points.insert(1, SweepPoint(workload="LSTM", gpu=resolve_gpu("rtx-2080-ti")))
        result = run_sweep(points)
        assert [r["kind"] for r in result.records] == ["asic", "gpu", "asic"]
        for point, record in zip(points, result.records):
            assert record == evaluate_point(point)

    def test_engine_vectorize_flag(self, tmp_path):
        scalar_engine = DSEEngine(store=tmp_path / "s.jsonl", vectorize=False)
        points = _points("LSTM", "RNN")
        scalar = scalar_engine.run(points)
        clear_memo()
        vector_engine = DSEEngine(vectorize=True)
        assert vector_engine.run(points).records == scalar.records


class TestShouldCancel:
    """Cooperative cancellation: the hook behind POST /jobs/{id}/cancel."""

    def test_cancelled_before_start_yields_nothing(self):
        run_sweep(_points("LSTM"))  # even a warm memo must not leak out
        stream = iter_sweep(_points("LSTM"), should_cancel=lambda: True)
        assert list(stream) == []

    def test_cancel_after_first_record_keeps_only_it(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        yielded = []
        stream = iter_sweep(
            _points("LSTM", "RNN"),
            store=store,
            should_cancel=lambda: len(yielded) >= 1,
        )
        for sweep_record in stream:
            yielded.append(sweep_record)
        assert len(yielded) == 1
        # The one yielded record is fully persisted; nothing half-done
        # follows it -- cancel lands exactly on a record boundary.
        assert set(store.load()) == {yielded[0].hash}

    def test_scalar_path_honours_cancel(self):
        yielded = []
        stream = iter_sweep(
            _points("LSTM", "RNN"),
            vectorize=False,
            should_cancel=lambda: len(yielded) >= 1,
        )
        for sweep_record in stream:
            yielded.append(sweep_record)
        assert len(yielded) == 1

    def test_pool_path_honours_cancel(self):
        yielded = []
        stream = iter_sweep(
            _points("LSTM", "RNN", "AlexNet"),
            workers=2,
            should_cancel=lambda: len(yielded) >= 1,
        )
        for sweep_record in stream:
            yielded.append(sweep_record)
        # The early return tears the pool down mid-sweep: strictly
        # fewer records than the full three-chunk run.
        assert len(yielded) == 1

    def test_uncancelled_hook_changes_nothing(self):
        points = _points("LSTM", "RNN")
        plain = [sr.record for sr in iter_sweep(points)]
        clear_memo()
        hooked = [
            sr.record
            for sr in iter_sweep(points, should_cancel=lambda: False)
        ]
        assert hooked == plain
