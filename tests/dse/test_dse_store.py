"""Tests for the append-only JSONL result store: load semantics,
version-aware duplicate resolution, shard merge, and compaction."""

import gzip
import json

from repro.dse import EVAL_VERSION, ResultStore


def _record(key, value=1.0, version=1):
    return {"hash": key, "version": version, "metrics": {"total_seconds": value}}


class TestResultStore:
    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.load() == {}
        assert not store.exists()
        assert len(store) == 0

    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        written = store.append([_record("a"), _record("b")])
        assert written == 2
        loaded = store.load()
        assert set(loaded) == {"a", "b"}
        assert "a" in store

    def test_append_creates_parent_dirs(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "s.jsonl")
        store.append([_record("a")])
        assert store.exists()

    def test_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", 1.0)])
        store.append([_record("a", 2.0)])
        assert store.load()["a"]["metrics"]["total_seconds"] == 2.0

    def test_stale_version_never_shadows_current(self, tmp_path):
        # Regression: load() used to keep whichever duplicate-hash line
        # came last regardless of version, so a stale re-append could
        # shadow a current record.  Last-write-wins is version-aware.
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", 1.0, version=2)])
        store.append([_record("a", 9.0, version=1)])
        survivor = store.load()["a"]
        assert survivor["version"] == 2
        assert survivor["metrics"]["total_seconds"] == 1.0

    def test_newer_version_supersedes_regardless_of_order(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", 9.0, version=1), _record("a", 1.0, version=2)])
        assert store.load()["a"]["version"] == 2

    def test_versionless_record_treated_as_oldest(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", 1.0, version=1)])
        record = _record("a", 9.0)
        del record["version"]
        store.append([record])
        assert store.load()["a"]["version"] == 1

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append([_record("a"), _record("b")])
        with path.open("a") as handle:
            handle.write('{"hash": "c", "metr')  # crashed mid-write
        assert set(store.load()) == {"a", "b"}

    def test_blank_lines_and_keyless_records_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            "\n"
            + json.dumps({"no_hash": True})
            + "\n"
            + json.dumps(_record("a"))
            + "\n"
        )
        assert set(ResultStore(path).load()) == {"a"}

    def test_float_roundtrip_is_exact(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        value = 0.1234567890123456789 / 3.0
        store.append([_record("a", value)])
        assert store.load()["a"]["metrics"]["total_seconds"] == value


class TestMerge:
    def test_union_of_disjoint_shards(self, tmp_path):
        s0 = ResultStore(tmp_path / "shard0.jsonl")
        s1 = ResultStore(tmp_path / "shard1.jsonl")
        s0.append([_record("a"), _record("b")])
        s1.append([_record("c")])
        dest = ResultStore(tmp_path / "merged.jsonl")
        assert dest.merge([s0, s1.path]) == 3  # stores or raw paths
        assert set(dest.load()) == {"a", "b", "c"}

    def test_missing_sources_skipped(self, tmp_path):
        dest = ResultStore(tmp_path / "merged.jsonl")
        src = ResultStore(tmp_path / "s.jsonl")
        src.append([_record("a")])
        assert dest.merge([src, tmp_path / "absent.jsonl"]) == 1

    def test_existing_dest_records_participate(self, tmp_path):
        dest = ResultStore(tmp_path / "merged.jsonl")
        dest.append([_record("a", 1.0, version=2), _record("b")])
        src = ResultStore(tmp_path / "s.jsonl")
        src.append([_record("a", 9.0, version=1), _record("c")])
        assert dest.merge([src]) == 3
        merged = dest.load()
        assert merged["a"]["version"] == 2  # stale source loses
        assert set(merged) == {"a", "b", "c"}

    def test_duplicate_hash_newer_version_wins(self, tmp_path):
        s0 = ResultStore(tmp_path / "shard0.jsonl")
        s1 = ResultStore(tmp_path / "shard1.jsonl")
        s0.append([_record("a", 9.0, version=1)])
        s1.append([_record("a", 1.0, version=2)])
        dest = ResultStore(tmp_path / "merged.jsonl")
        dest.merge([s1, s0])  # stale store listed last must still lose
        assert dest.load()["a"]["version"] == 2

    def test_same_version_tie_later_source_wins(self, tmp_path):
        s0 = ResultStore(tmp_path / "shard0.jsonl")
        s1 = ResultStore(tmp_path / "shard1.jsonl")
        s0.append([_record("a", 1.0)])
        s1.append([_record("a", 2.0)])
        dest = ResultStore(tmp_path / "merged.jsonl")
        dest.merge([s0, s1])
        assert dest.load()["a"]["metrics"]["total_seconds"] == 2.0

    def test_merged_store_is_compact(self, tmp_path):
        src = ResultStore(tmp_path / "s.jsonl")
        src.append([_record("a", 1.0), _record("a", 2.0), _record("b")])
        dest = ResultStore(tmp_path / "merged.jsonl")
        dest.merge([src])
        assert sum(1 for _ in dest.iter_lines()) == 2


class TestCompact:
    def test_drops_superseded_lines_keeps_queries(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(
            [
                _record("a", 1.0, version=EVAL_VERSION),
                _record("b", 2.0, version=EVAL_VERSION),
            ]
        )
        store.append([_record("a", 3.0, version=EVAL_VERSION)])
        before = store.load()
        before_size = store.path.stat().st_size
        kept, dropped = store.compact()
        assert (kept, dropped) == (2, 1)
        assert store.load() == before
        assert store.path.stat().st_size < before_size

    def test_drops_stale_versions_by_default(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(
            [
                _record("a", version=EVAL_VERSION),
                _record("b", version=EVAL_VERSION - 1),
            ]
        )
        kept, dropped = store.compact()
        assert (kept, dropped) == (1, 1)
        assert set(store.load()) == {"a"}

    def test_keep_stale_option(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(
            [
                _record("a", version=EVAL_VERSION),
                _record("b", version=EVAL_VERSION - 1),
            ]
        )
        kept, dropped = store.compact(drop_stale=False)
        assert (kept, dropped) == (2, 0)

    def test_missing_store_is_noop(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").compact() == (0, 0)

    def test_gzip_roundtrip_and_append(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(
            [_record(f"k{i}", version=EVAL_VERSION) for i in range(50)]
        )
        plain = store.load()
        plain_size = store.path.stat().st_size
        store.compact(gzip=True)
        assert store.is_gzipped()
        assert store.path.stat().st_size < plain_size
        assert store.load() == plain
        # Appending to a gzipped store adds a member the reader handles.
        store.append([_record("extra", version=EVAL_VERSION)])
        assert set(store.load()) == set(plain) | {"extra"}
        # And compaction keeps compression unless told otherwise.
        store.compact()
        assert store.is_gzipped()
        store.compact(gzip=False)
        assert not store.is_gzipped()
        assert set(store.load()) == set(plain) | {"extra"}

    def test_appender_streams_incrementally(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with store.appender() as persist:
            persist(_record("a"))
            # Flushed mid-stream: a concurrent reader already sees it.
            assert set(ResultStore(store.path).load()) == {"a"}
            persist(_record("b"))
        assert set(store.load()) == {"a", "b"}

    def test_appender_without_writes_creates_no_file(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with store.appender():
            pass
        assert not store.exists()

    def test_appender_on_gzipped_store_adds_one_member(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", version=EVAL_VERSION)])
        store.compact(gzip=True)
        base_members = store.path.read_bytes().count(b"\x1f\x8b\x08")
        with store.appender() as persist:
            for i in range(20):
                persist(_record(f"k{i}", version=EVAL_VERSION))
        members = store.path.read_bytes().count(b"\x1f\x8b\x08")
        assert members == base_members + 1  # one member for the whole run
        assert len(store.load()) == 21

    def test_torn_gzip_tail_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a"), _record("b")])
        store.compact(gzip=True, drop_stale=False)
        blob = store.path.read_bytes()
        store.path.write_bytes(blob + gzip.compress(b'{"hash": "c"')[:-7])
        assert set(store.load()) == {"a", "b"}


class TestPolicyConfigRoundTrip:
    """Per-layer policy configs survive the JSON store round-trip.

    JSON has no tuples: a policy spelled with per-layer tuples comes
    back from any JSON surface (sweep-spec files, ``--policy-axis``
    files, store-adjacent metadata) as nested lists.  PolicySpec
    canonicalizes both spellings to one hashable spec and one canonical
    name, so reload + re-hash is stable and a warm store keeps hitting.
    """

    def _point(self, policy):
        from repro.dse import SweepPoint
        from repro.hw import BPVEC, DDR4

        return SweepPoint(
            workload="RNN", policy=policy, platform=BPVEC, memory=DDR4, batch=1
        )

    def test_reload_and_rehash_is_stable(self, tmp_path):
        from repro.dse import PolicySpec, clear_memo, run_sweep

        spec = PolicySpec(layers=((8, 8), (4, 2)))
        store = ResultStore(tmp_path / "s.jsonl")
        clear_memo()
        cold = run_sweep([self._point(spec)], store=store)
        assert cold.evaluated == 1

        # A JSON round-trip of the policy (tuples -> lists) re-hashes to
        # the same config, so the store serves the warm record.
        reloaded_policy = json.loads(json.dumps(spec.to_dict()))
        assert isinstance(reloaded_policy["layers"][0], list)
        clear_memo()
        warm = run_sweep([self._point(reloaded_policy)], store=store)
        assert warm.from_store == 1 and warm.evaluated == 0
        assert warm.records == cold.records

    def test_tuple_and_list_layers_hash_identically(self):
        from repro.dse import PolicySpec

        by_tuple = PolicySpec(layers=((8, 8), (4, 2)))
        by_list = PolicySpec(layers=[[8, 8], [4, 2]])
        assert by_tuple == by_list
        assert hash(by_tuple) == hash(by_list)
        assert (
            self._point(by_tuple).config_hash()
            == self._point(by_list).config_hash()
        )

    def test_stored_policy_name_resolves_back_to_the_assignment(self, tmp_path):
        from repro.dse import PolicySpec, clear_memo, resolve_policy, run_sweep

        spec = PolicySpec(layers=((8, 4), (2, 6)))
        store = ResultStore(tmp_path / "s.jsonl")
        clear_memo()
        run_sweep([self._point(spec)], store=store)
        (record,) = store.load().values()
        # The record's policy field alone rebuilds the exact assignment.
        assert resolve_policy(record["policy"]) == spec
