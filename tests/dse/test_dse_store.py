"""Tests for the append-only JSONL result store."""

import json

from repro.dse import ResultStore


def _record(key, value=1.0):
    return {"hash": key, "version": 1, "metrics": {"total_seconds": value}}


class TestResultStore:
    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.load() == {}
        assert not store.exists()
        assert len(store) == 0

    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        written = store.append([_record("a"), _record("b")])
        assert written == 2
        loaded = store.load()
        assert set(loaded) == {"a", "b"}
        assert "a" in store

    def test_append_creates_parent_dirs(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "s.jsonl")
        store.append([_record("a")])
        assert store.exists()

    def test_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", 1.0)])
        store.append([_record("a", 2.0)])
        assert store.load()["a"]["metrics"]["total_seconds"] == 2.0

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append([_record("a"), _record("b")])
        with path.open("a") as handle:
            handle.write('{"hash": "c", "metr')  # crashed mid-write
        assert set(store.load()) == {"a", "b"}

    def test_blank_lines_and_keyless_records_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            "\n" + json.dumps({"no_hash": True}) + "\n" + json.dumps(_record("a")) + "\n"
        )
        assert set(ResultStore(path).load()) == {"a"}

    def test_float_roundtrip_is_exact(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        value = 0.1234567890123456789 / 3.0
        store.append([_record("a", value)])
        assert store.load()["a"]["metrics"]["total_seconds"] == value
