"""Result-store tests, parametrized over all backends.

Every semantic the engine relies on -- load resolution, version-aware
duplicate handling, merge, compaction, streaming appends, append
change-counting, engine round-trips that keep the memo warm -- runs
against the JSONL, SQLite, *and* partitioned backends through one
shared suite.  Backend-specific behaviour (gzip, torn-line tolerance,
indexed point lookups, part routing and manifests) gets its own
classes below.
"""

import gzip
import json
import os

import pytest

from repro.dse import (
    EVAL_VERSION,
    PartitionedStore,
    ResultStore,
    SQLiteStore,
    StoreWarning,
    clear_memo,
    open_store,
    run_sweep,
)

BACKENDS = ("jsonl", "sqlite", "partitioned")
_SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite", "partitioned": ".parts"}


def _record(key, value=1.0, version=1):
    return {"hash": key, "version": version, "metrics": {"total_seconds": value}}


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def make_store(backend, tmp_path):
    """A factory for fresh stores of the parametrized backend."""

    def _make(name="s"):
        return open_store(tmp_path / f"{name}{_SUFFIX[backend]}", backend=backend)

    _make.backend = backend
    return _make


class TestStoreSemantics:
    """The shared contract: either backend is a drop-in for the other."""

    def test_backend_name_matches_fixture(self, make_store):
        assert make_store().backend == make_store.backend

    def test_missing_file_loads_empty(self, make_store):
        store = make_store("absent")
        assert store.load() == {}
        assert not store.exists()
        assert len(store) == 0
        assert store.hashes() == set()
        assert store.records_for(["a"]) == {}

    def test_append_and_load(self, make_store):
        store = make_store()
        written = store.append([_record("a"), _record("b")])
        assert written == 2
        loaded = store.load()
        assert set(loaded) == {"a", "b"}
        assert "a" in store
        assert "zzz" not in store

    def test_append_creates_parent_dirs(self, backend, tmp_path):
        store = open_store(
            tmp_path / "deep" / "nested" / f"s{_SUFFIX[backend]}", backend=backend
        )
        store.append([_record("a")])
        assert store.exists()

    def test_last_record_wins(self, make_store):
        store = make_store()
        store.append([_record("a", 1.0)])
        store.append([_record("a", 2.0)])
        assert store.load()["a"]["metrics"]["total_seconds"] == 2.0

    def test_stale_version_never_shadows_current(self, make_store):
        store = make_store()
        store.append([_record("a", 1.0, version=2)])
        store.append([_record("a", 9.0, version=1)])
        survivor = store.load()["a"]
        assert survivor["version"] == 2
        assert survivor["metrics"]["total_seconds"] == 1.0

    def test_newer_version_supersedes_regardless_of_order(self, make_store):
        store = make_store()
        store.append([_record("a", 9.0, version=1), _record("a", 1.0, version=2)])
        assert store.load()["a"]["version"] == 2

    def test_versionless_record_treated_as_oldest(self, make_store):
        store = make_store()
        store.append([_record("a", 1.0, version=1)])
        record = _record("a", 9.0)
        del record["version"]
        store.append([record])
        assert store.load()["a"]["version"] == 1

    def test_float_roundtrip_is_exact(self, make_store):
        store = make_store()
        value = 0.1234567890123456789 / 3.0
        store.append([_record("a", value)])
        assert store.load()["a"]["metrics"]["total_seconds"] == value

    def test_records_for_filters_hashes_and_version(self, make_store):
        store = make_store()
        store.append(
            [_record("a", version=1), _record("b", version=2), _record("c")]
        )
        assert set(store.records_for(["a", "b", "nope"])) == {"a", "b"}
        assert set(store.records_for(["a", "b"], version=2)) == {"b"}
        assert store.records_for([]) == {}

    def test_versionless_records_filter_as_version_zero(self, make_store):
        # Both backends must agree: a missing version counts as 0
        # (matching _supersedes and the SQLite column default).
        store = make_store()
        record = _record("a")
        del record["version"]
        store.append([record])
        assert set(store.records_for(["a"], version=0)) == {"a"}
        assert store.hashes(version=0) == {"a"}
        assert store.records_for(["a"], version=1) == {}

    def test_hashes_by_version(self, make_store):
        store = make_store()
        store.append([_record("a", version=1), _record("b", version=2)])
        assert store.hashes() == {"a", "b"}
        assert store.hashes(version=2) == {"b"}

    def test_stats_shape(self, make_store):
        store = make_store()
        store.append([_record("a")])
        stats = store.stats()
        assert stats["backend"] == make_store.backend
        assert stats["records"] == 1
        assert stats["exists"] is True
        assert stats["size_bytes"] > 0

    def test_appender_streams_incrementally(self, make_store):
        store = make_store()
        with store.appender() as persist:
            persist(_record("a"))
            # Flushed mid-stream: a concurrent reader already sees it.
            assert set(open_store(store.path).load()) == {"a"}
            persist(_record("b"))
        assert set(store.load()) == {"a", "b"}

    def test_appender_without_writes_creates_no_file(self, make_store):
        store = make_store()
        with store.appender():
            pass
        assert not store.exists()

    def test_append_reports_actual_changes(self, make_store):
        # The ingest-reply contract: append() counts records that
        # landed, not records offered.  A stale upload must report the
        # same count on every backend.
        store = make_store()
        assert store.append([_record("a", version=2)]) == 1
        assert store.append([_record("a", 9.0, version=1)]) == 0  # stale
        assert store.append([_record("a", 9.0, version=1), _record("b")]) == 1
        assert store.append([_record("a", 5.0, version=2)]) == 1  # tie rewrites
        assert store.append([_record("x", 1.0), _record("x", 2.0)]) == 2
        assert store.append([_record("y", 1.0, version=2), _record("y", 9.0, version=1)]) == 1
        assert store.load()["a"]["metrics"]["total_seconds"] == 5.0

    def test_keyless_append_skips_and_warns(self, make_store):
        store = make_store()
        with pytest.warns(StoreWarning, match="keyless"):
            assert store.append([{"no_hash": True}, _record("a")]) == 1
        assert set(store.load()) == {"a"}
        assert sum(1 for _ in store.iter_lines()) == 1  # no dead lines

    def test_keyless_appender_skips_and_warns(self, make_store):
        store = make_store()
        with store.appender() as persist:
            persist(_record("a"))
            with pytest.warns(StoreWarning, match="keyless"):
                persist({"no_hash": True})
        assert set(store.load()) == {"a"}
        assert sum(1 for _ in store.iter_lines()) == 1

    def test_iter_records_streams_survivors(self, make_store):
        store = make_store()
        store.append([_record("a", 1.0), _record("b", version=2)])
        store.append([_record("a", 2.0)])
        by_hash = {record["hash"]: record for record in store.iter_records()}
        assert by_hash == store.load()
        assert [r["hash"] for r in store.iter_records(version=2)] == ["b"]


class TestMerge:
    def test_union_of_disjoint_shards(self, make_store):
        s0, s1 = make_store("shard0"), make_store("shard1")
        s0.append([_record("a"), _record("b")])
        s1.append([_record("c")])
        dest = make_store("merged")
        assert dest.merge([s0, s1.path]) == 3  # stores or raw paths
        assert set(dest.load()) == {"a", "b", "c"}

    def test_missing_sources_skipped(self, make_store, tmp_path):
        dest = make_store("merged")
        src = make_store()
        src.append([_record("a")])
        assert dest.merge([src, tmp_path / "absent.jsonl"]) == 1

    def test_existing_dest_records_participate(self, make_store):
        dest = make_store("merged")
        dest.append([_record("a", 1.0, version=2), _record("b")])
        src = make_store()
        src.append([_record("a", 9.0, version=1), _record("c")])
        assert dest.merge([src]) == 3
        merged = dest.load()
        assert merged["a"]["version"] == 2  # stale source loses
        assert set(merged) == {"a", "b", "c"}

    def test_duplicate_hash_newer_version_wins(self, make_store):
        s0, s1 = make_store("shard0"), make_store("shard1")
        s0.append([_record("a", 9.0, version=1)])
        s1.append([_record("a", 1.0, version=2)])
        dest = make_store("merged")
        dest.merge([s1, s0])  # stale store listed last must still lose
        assert dest.load()["a"]["version"] == 2

    def test_same_version_tie_later_source_wins(self, make_store):
        s0, s1 = make_store("shard0"), make_store("shard1")
        s0.append([_record("a", 1.0)])
        s1.append([_record("a", 2.0)])
        dest = make_store("merged")
        dest.merge([s0, s1])
        assert dest.load()["a"]["metrics"]["total_seconds"] == 2.0

    def test_merged_store_is_compact(self, make_store):
        src = make_store()
        src.append([_record("a", 1.0), _record("a", 2.0), _record("b")])
        dest = make_store("merged")
        dest.merge([src])
        assert sum(1 for _ in dest.iter_lines()) == 2

    def test_merge_from_loaded_mapping(self, make_store):
        # Callers that already hold a loaded store (e.g. dse-launch
        # building its upload delta) merge the dict without re-parsing.
        dest = make_store("merged")
        dest.append([_record("a", 1.0, version=2)])
        loaded = {
            "a": _record("a", 9.0, version=1),  # stale: must lose
            "b": _record("b"),
        }
        assert dest.merge([loaded]) == 2
        merged = dest.load()
        assert merged["a"]["version"] == 2
        assert set(merged) == {"a", "b"}

    def test_cross_backend_merge(self, backend, tmp_path):
        """A dest of any backend unions sources of a *different* one."""
        other = {
            "jsonl": "sqlite",
            "sqlite": "partitioned",
            "partitioned": "jsonl",
        }[backend]
        src = open_store(tmp_path / f"src{_SUFFIX[other]}", backend=other)
        src.append([_record("a"), _record("b")])
        dest = open_store(tmp_path / f"dest{_SUFFIX[backend]}", backend=backend)
        dest.append([_record("c")])
        assert dest.merge([src.path]) == 3
        assert set(dest.load()) == {"a", "b", "c"}


class TestCompact:
    def test_drops_stale_versions_by_default(self, make_store):
        store = make_store()
        store.append(
            [
                _record("a", version=EVAL_VERSION),
                _record("b", version=EVAL_VERSION - 1),
            ]
        )
        kept, dropped = store.compact()
        assert (kept, dropped) == (1, 1)
        assert set(store.load()) == {"a"}

    def test_keep_stale_option(self, make_store):
        store = make_store()
        store.append(
            [
                _record("a", version=EVAL_VERSION),
                _record("b", version=EVAL_VERSION - 1),
            ]
        )
        kept, dropped = store.compact(drop_stale=False)
        assert (kept, dropped) == (2, 0)

    def test_missing_store_is_noop(self, make_store):
        assert make_store("absent").compact() == (0, 0)

    def test_compact_preserves_survivors(self, make_store):
        store = make_store()
        store.append(
            [
                _record("a", 1.0, version=EVAL_VERSION),
                _record("b", 2.0, version=EVAL_VERSION),
            ]
        )
        store.append([_record("a", 3.0, version=EVAL_VERSION)])
        before = store.load()
        store.compact()
        assert store.load() == before


class TestEngineRoundTrip:
    """The satellite contract: both backends behave identically under
    the engine -- cold fill, stale supersede, and a store reload that
    keeps the memo warm."""

    def _points(self):
        from repro.dse import SweepPoint
        from repro.hw import BPVEC, DDR4, HBM2

        return [
            SweepPoint(workload="RNN", platform=BPVEC, memory=DDR4, batch=1),
            SweepPoint(workload="RNN", platform=BPVEC, memory=HBM2, batch=1),
        ]

    def test_cold_then_warm_is_bit_identical(self, make_store):
        store = make_store()
        clear_memo()
        cold = run_sweep(self._points(), store=store)
        assert (cold.evaluated, cold.from_store) == (2, 0)
        clear_memo()
        warm = run_sweep(self._points(), store=store)
        assert (warm.evaluated, warm.from_store) == (0, 2)
        assert warm.records == cold.records  # bit-identical through JSON

    def test_store_reload_keeps_memo_warm(self, make_store):
        store = make_store()
        clear_memo()
        run_sweep(self._points(), store=store)
        clear_memo()
        reloaded = run_sweep(self._points(), store=store)
        assert reloaded.from_store == 2
        # The reload warmed the memo: the next run never touches disk.
        again = run_sweep(self._points(), store=store)
        assert (again.from_memo, again.from_store, again.evaluated) == (2, 0, 0)
        assert again.records == reloaded.records

    def test_stale_version_reevaluated_and_superseded(self, make_store):
        from repro.dse import evaluate_point

        store = make_store()
        (point, _) = self._points()
        stale = dict(evaluate_point(point), version=EVAL_VERSION - 1)
        store.append([stale])
        clear_memo()
        result = run_sweep([point], store=store)
        assert result.evaluated == 1
        assert store.load()[point.config_hash()]["version"] == EVAL_VERSION
        # And the stale line can never shadow the fresh record again.
        store.append([stale])
        assert store.load()[point.config_hash()]["version"] == EVAL_VERSION

    def test_sharded_merge_matches_unsharded(self, make_store):
        from repro.dse import SweepSpec

        spec = SweepSpec.grid(
            workloads=("RNN", "LSTM"),
            platforms=("bpvec", "tpu"),
            memories=("ddr4",),
            batches=(1,),
        )
        clear_memo()
        single = make_store("single")
        run_sweep(spec, store=single)
        shards = []
        for index in range(2):
            clear_memo()
            shard_store = make_store(f"shard{index}")
            run_sweep(spec.shard(index, 2), store=shard_store)
            shards.append(shard_store)
        merged = make_store("merged")
        merged.merge(shards)
        assert merged.load() == single.load()


class TestJsonlSpecific:
    """Torn-line tolerance, gzip transparency, appender member counts."""

    def test_torn_trailing_line_ignored_with_warning(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append([_record("a"), _record("b")])
        with path.open("a") as handle:
            handle.write('{"hash": "c", "metr')  # crashed mid-write
        with pytest.warns(StoreWarning, match="torn write"):
            assert set(store.load()) == {"a", "b"}

    def test_torn_multibyte_tail_ignored_with_warning(self, tmp_path):
        # A crash can tear a multi-byte character in half; the loader
        # must warn and skip instead of raising UnicodeDecodeError.
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append([_record("a")])
        line = json.dumps({"hash": "b", "note": "café"}) + "\n"
        with path.open("ab") as handle:
            handle.write(line.encode()[:-3])  # cut inside the é
        with pytest.warns(StoreWarning):
            assert set(store.load()) == {"a"}

    def test_blank_lines_and_keyless_records_skipped_silently(self, tmp_path):
        import warnings

        path = tmp_path / "s.jsonl"
        path.write_text(
            "\n"
            + json.dumps({"no_hash": True})
            + "\n"
            + json.dumps(_record("a"))
            + "\n"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # valid JSON never warns
            assert set(ResultStore(path).load()) == {"a"}

    def test_compact_drops_superseded_lines(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(
            [
                _record("a", 1.0, version=EVAL_VERSION),
                _record("b", 2.0, version=EVAL_VERSION),
            ]
        )
        store.append([_record("a", 3.0, version=EVAL_VERSION)])
        before = store.load()
        before_size = store.path.stat().st_size
        kept, dropped = store.compact()
        assert (kept, dropped) == (2, 1)
        assert store.load() == before
        assert store.path.stat().st_size < before_size

    def test_gzip_roundtrip_and_append(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record(f"k{i}", version=EVAL_VERSION) for i in range(50)])
        plain = store.load()
        plain_size = store.path.stat().st_size
        store.compact(gzip=True)
        assert store.is_gzipped()
        assert store.path.stat().st_size < plain_size
        assert store.load() == plain
        # Appending to a gzipped store adds a member the reader handles.
        store.append([_record("extra", version=EVAL_VERSION)])
        assert set(store.load()) == set(plain) | {"extra"}
        # And compaction keeps compression unless told otherwise.
        store.compact()
        assert store.is_gzipped()
        store.compact(gzip=False)
        assert not store.is_gzipped()
        assert set(store.load()) == set(plain) | {"extra"}

    def test_appender_on_gzipped_store_adds_one_member(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", version=EVAL_VERSION)])
        store.compact(gzip=True)
        base_members = store.path.read_bytes().count(b"\x1f\x8b\x08")
        with store.appender() as persist:
            for i in range(20):
                persist(_record(f"k{i}", version=EVAL_VERSION))
        members = store.path.read_bytes().count(b"\x1f\x8b\x08")
        assert members == base_members + 1  # one member for the whole run
        assert len(store.load()) == 21

    def test_torn_gzip_tail_ignored_with_warning(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a"), _record("b")])
        store.compact(gzip=True, drop_stale=False)
        blob = store.path.read_bytes()
        store.path.write_bytes(blob + gzip.compress(b'{"hash": "c"')[:-7])
        with pytest.warns(StoreWarning, match="gzip"):
            assert set(store.load()) == {"a", "b"}


class TestSqliteSpecific:
    def test_gzip_is_rejected(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.sqlite")
        store.append([_record("a")])
        with pytest.raises(ValueError, match="gzip"):
            store.compact(gzip=True)
        with pytest.raises(ValueError, match="gzip"):
            store.merge([], gzip=True)
        assert not store.is_gzipped()

    def test_duplicates_never_reach_the_table(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.sqlite")
        store.append([_record("a", 1.0), _record("a", 2.0)])
        store.append([_record("a", 3.0)])
        assert sum(1 for _ in store.iter_lines()) == 1
        assert store.load()["a"]["metrics"]["total_seconds"] == 3.0

    def test_keyless_records_are_skipped(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.sqlite")
        with pytest.warns(StoreWarning, match="keyless"):
            assert store.append([{"no_hash": True}, _record("a")]) == 1
        assert set(store.load()) == {"a"}

    def test_forcing_sqlite_onto_a_jsonl_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).append([_record("a")])
        with pytest.raises(ValueError, match="not a SQLite store"):
            SQLiteStore(path).load()

    def test_forcing_jsonl_onto_a_sqlite_file_is_a_clean_error(self, tmp_path):
        # Reading SQLite pages as torn JSONL lines would report an
        # empty store, and appended lines would be invisible to every
        # later (magic-sniffed) open -- silent data loss.  Hard error.
        path = tmp_path / "s.sqlite"
        SQLiteStore(path).append([_record("a")])
        forced = open_store(path, backend="jsonl")
        with pytest.raises(ValueError, match="is a SQLite store"):
            forced.load()
        with pytest.raises(ValueError, match="is a SQLite store"):
            forced.append([_record("b")])

    def test_sqlite_errors_surface_as_oserror(self, tmp_path, monkeypatch):
        import sqlite3

        store = SQLiteStore(tmp_path / "s.sqlite")
        store.append([_record("a")])

        def locked(*args, **kwargs):
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr("repro.dse.sqlite_store.sqlite3.connect", locked)
        with pytest.raises(OSError, match="database is locked"):
            store.load()
        with pytest.raises(OSError, match="database is locked"):
            store.append([_record("b")])

    def test_compact_reclaims_space(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.sqlite")
        store.append(
            [_record(f"k{i}", "x" * 200, version=EVAL_VERSION - 1) for i in range(500)]
        )
        before = store.path.stat().st_size
        kept, dropped = store.compact()
        assert (kept, dropped) == (0, 500)
        assert store.path.stat().st_size < before


class TestPartitionedSpecific:
    """Part routing, manifest layout, and the stale-part compaction policy."""

    def _store(self, tmp_path, **kwargs):
        return PartitionedStore(tmp_path / "s.parts", **kwargs)

    def test_layout_and_manifest(self, tmp_path):
        store = self._store(tmp_path, parts=4)
        store.append([_record(f"{i:x}" * 64) for i in range(16)])
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["format"] == 1
        assert manifest["backend"] == "partitioned"
        assert manifest["parts"] == 4
        names = sorted(p.name for p in store.path.glob("part-*.jsonl"))
        assert names == [f"part-{i:04d}.jsonl" for i in range(4)]
        counts = manifest["counts"]
        assert [c["lines"] for c in counts] == [4, 4, 4, 4]
        assert all(c["live"] == c["lines"] for c in counts)
        assert len(store) == 16

    def test_part_routing_is_monotone_and_balanced(self):
        from repro.dse.partitioned import part_index

        hex_keys = [f"{i:02x}" + "0" * 62 for i in range(256)]
        indices = [part_index(key, 8) for key in hex_keys]
        assert indices == sorted(indices)  # ranges are contiguous
        assert set(indices) == set(range(8))  # and uniformly filled
        assert indices.count(0) == indices.count(7) == 32
        # Arbitrary (non-hex) keys still map monotonically, so sorted
        # part order equals sorted key order for any key population.
        arbitrary = sorted(["", "Z", "a", "k10", "k2", "zzz", "café"])
        arb = [part_index(key, 8) for key in arbitrary]
        assert arb == sorted(arb)

    def test_existing_manifest_part_count_wins(self, tmp_path):
        store = self._store(tmp_path, parts=4)
        store.append([_record("a")])
        reopened = self._store(tmp_path, parts=16)
        assert reopened.parts == 4
        reopened.append([_record("f" * 64)])
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["parts"] == 4
        assert set(store.load()) == {"a", "f" * 64}

    def test_records_for_parses_only_routed_parts(self, tmp_path, monkeypatch):
        store = self._store(tmp_path, parts=4)
        store.append([_record(f"{i:x}" * 64) for i in range(16)])
        parsed = []
        original = ResultStore.iter_lines

        def counting(self):
            parsed.append(self.path.name)
            return original(self)

        monkeypatch.setattr(ResultStore, "iter_lines", counting)
        hits = store.records_for(["0" * 64, "f" * 64])
        assert set(hits) == {"0" * 64, "f" * 64}
        assert sorted(parsed) == ["part-0000.jsonl", "part-0003.jsonl"]

    def test_compact_stale_parts_rewrites_only_stale_parts(self, tmp_path):
        store = self._store(tmp_path, parts=2, compact_threshold=None)
        store.append([_record("0" * 64, 1.0)])
        store.append([_record("0" * 64, 2.0)])  # part 0: 2 lines, 1 live
        store.append([_record("f" * 64)])  # part 1: clean
        clean = store.path / "part-0001.jsonl"
        before = (clean.stat().st_mtime_ns, clean.read_bytes())
        summary = store.compact_stale_parts(threshold=0.4)
        assert summary == {"examined": 2, "compacted": 1, "dropped": 1}
        assert (clean.stat().st_mtime_ns, clean.read_bytes()) == before
        stale_part = store.path / "part-0000.jsonl"
        assert len(stale_part.read_text().splitlines()) == 1
        assert store.load()["0" * 64]["metrics"]["total_seconds"] == 2.0
        # Below the threshold nothing is touched.
        assert store.compact_stale_parts(threshold=0.9)["compacted"] == 0

    def test_policy_compaction_keeps_old_versions(self, tmp_path):
        # Unlike full compact(), the policy only reclaims dead lines --
        # resolution survivors of *any* version are kept.
        store = self._store(tmp_path, parts=1, compact_threshold=None)
        store.append([_record("a", version=1)])
        store.append([_record("a", 2.0, version=1), _record("b", version=EVAL_VERSION)])
        summary = store.compact_stale_parts(threshold=0.2)
        assert summary["compacted"] == 1 and summary["dropped"] == 1
        survivors = store.load()
        assert survivors["a"]["version"] == 1
        assert survivors["a"]["metrics"]["total_seconds"] == 2.0

    def test_append_auto_compacts_past_threshold(self, tmp_path):
        store = self._store(tmp_path, parts=1, compact_threshold=0.3)
        store.append([_record("a", 1.0)])
        store.append([_record("a", 2.0)])  # stale fraction 0.5 > 0.3
        part = store.path / "part-0000.jsonl"
        assert len(part.read_text().splitlines()) == 1
        assert store.load()["a"]["metrics"]["total_seconds"] == 2.0
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["counts"][0] == {"lines": 1, "live": 1}

    def test_streamed_appends_estimate_then_recount(self, tmp_path):
        store = self._store(tmp_path, parts=1, compact_threshold=None)
        with store.appender() as persist:
            persist(_record("a", 1.0))
            persist(_record("a", 2.0))  # no resolution on this path
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["counts"][0] == {"lines": 2, "live": 2}  # estimate
        store.compact_stale_parts(threshold=0.0)  # estimate says clean...
        store.append([_record("b")])  # ...but a bulk append recounts
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["counts"][0] == {"lines": 3, "live": 2}

    def test_gzip_is_rejected(self, tmp_path):
        store = self._store(tmp_path)
        store.append([_record("a")])
        with pytest.raises(ValueError, match="gzip"):
            store.compact(gzip=True)
        with pytest.raises(ValueError, match="gzip"):
            store.merge([], gzip=True)
        assert not store.is_gzipped()

    def test_forcing_partitioned_onto_a_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).append([_record("a")])
        forced = PartitionedStore(path)
        with pytest.raises(ValueError, match="not a partitioned store"):
            forced.load()
        with pytest.raises(ValueError, match="not a partitioned store"):
            forced.append([_record("b")])

    def test_stats_reports_parts_and_stale_lines(self, tmp_path):
        store = self._store(tmp_path, parts=2, compact_threshold=None)
        store.append([_record("0" * 64, 1.0), _record("f" * 64)])
        store.append([_record("0" * 64, 2.0)])
        stats = store.stats()
        assert stats["backend"] == "partitioned"
        assert stats["parts"] == 2
        assert stats["records"] == 2
        assert (stats["total_lines"], stats["stale_lines"]) == (3, 1)
        assert stats["size_bytes"] > 0


class TestOpenStore:
    def test_suffix_selects_backend(self, tmp_path):
        assert isinstance(open_store(tmp_path / "s.jsonl"), ResultStore)
        for suffix in (".sqlite", ".sqlite3", ".db", ".DB"):
            assert isinstance(open_store(tmp_path / f"s{suffix}"), SQLiteStore)
        assert isinstance(open_store(tmp_path / "s.parts"), PartitionedStore)

    def test_directory_sniffs_as_partitioned(self, tmp_path):
        # Any existing store directory opens partitioned, whatever the
        # name -- single-file backends can never be a directory.
        plain = tmp_path / "no-telling-suffix"
        PartitionedStore(plain).append([_record("a")])
        reopened = open_store(plain)
        assert isinstance(reopened, PartitionedStore)
        assert set(reopened.load()) == {"a"}

    def test_magic_bytes_beat_suffix(self, tmp_path):
        # A mis-suffixed existing store opens by what it *is*.
        jsonl_path = tmp_path / "actually-jsonl.db"
        ResultStore(jsonl_path).append([_record("a")])
        assert isinstance(open_store(jsonl_path), ResultStore)

        sqlite_path = tmp_path / "actually-sqlite.jsonl"
        SQLiteStore(sqlite_path).append([_record("a")])
        assert isinstance(open_store(sqlite_path), SQLiteStore)
        assert set(open_store(sqlite_path).load()) == {"a"}

    def test_explicit_backend_wins(self, tmp_path):
        assert isinstance(
            open_store(tmp_path / "s.jsonl", backend="sqlite"), SQLiteStore
        )
        assert isinstance(
            open_store(tmp_path / "s.sqlite", backend="jsonl"), ResultStore
        )

    def test_store_objects_pass_through(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.sqlite")
        assert open_store(store) is store

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            open_store(tmp_path / "s.jsonl", backend="lmdb")

    def test_gzipped_jsonl_still_sniffs_as_jsonl(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a")])
        store.compact(gzip=True, drop_stale=False)
        reopened = open_store(store.path)
        assert isinstance(reopened, ResultStore)
        assert reopened.is_gzipped()


class TestPolicyConfigRoundTrip:
    """Per-layer policy configs survive the JSON store round-trip.

    JSON has no tuples: a policy spelled with per-layer tuples comes
    back from any JSON surface (sweep-spec files, ``--policy-axis``
    files, store-adjacent metadata) as nested lists.  PolicySpec
    canonicalizes both spellings to one hashable spec and one canonical
    name, so reload + re-hash is stable and a warm store keeps hitting.
    """

    def _point(self, policy):
        from repro.dse import SweepPoint
        from repro.hw import BPVEC, DDR4

        return SweepPoint(
            workload="RNN", policy=policy, platform=BPVEC, memory=DDR4, batch=1
        )

    def test_reload_and_rehash_is_stable(self, make_store):
        from repro.dse import PolicySpec, clear_memo, run_sweep

        spec = PolicySpec(layers=((8, 8), (4, 2)))
        store = make_store()
        clear_memo()
        cold = run_sweep([self._point(spec)], store=store)
        assert cold.evaluated == 1

        # A JSON round-trip of the policy (tuples -> lists) re-hashes to
        # the same config, so the store serves the warm record.
        reloaded_policy = json.loads(json.dumps(spec.to_dict()))
        assert isinstance(reloaded_policy["layers"][0], list)
        clear_memo()
        warm = run_sweep([self._point(reloaded_policy)], store=store)
        assert warm.from_store == 1 and warm.evaluated == 0
        assert warm.records == cold.records

    def test_tuple_and_list_layers_hash_identically(self):
        from repro.dse import PolicySpec

        by_tuple = PolicySpec(layers=((8, 8), (4, 2)))
        by_list = PolicySpec(layers=[[8, 8], [4, 2]])
        assert by_tuple == by_list
        assert hash(by_tuple) == hash(by_list)
        assert (
            self._point(by_tuple).config_hash()
            == self._point(by_list).config_hash()
        )

    def test_stored_policy_name_resolves_back_to_the_assignment(self, make_store):
        from repro.dse import PolicySpec, clear_memo, resolve_policy, run_sweep

        spec = PolicySpec(layers=((8, 4), (2, 6)))
        store = make_store()
        clear_memo()
        run_sweep([self._point(spec)], store=store)
        (record,) = store.load().values()
        # The record's policy field alone rebuilds the exact assignment.
        assert resolve_policy(record["policy"]) == spec


class TestChangeToken:
    """The cache-invalidation key behind the server's records cache.

    The contract: any committed write -- including an external writer's
    same-size upsert inside one coarse mtime tick, which a bare
    ``(mtime, size)`` key cannot see -- moves the token.
    """

    def test_missing_file_has_no_token(self, make_store):
        assert make_store("absent").change_token() is None

    def test_token_stable_without_writes(self, make_store):
        store = make_store()
        store.append([_record("a")])
        assert store.change_token() == store.change_token()

    def test_token_moves_on_append(self, make_store):
        store = make_store()
        store.append([_record("a")])
        before = store.change_token()
        store.append([_record("b")])
        assert store.change_token() != before

    def test_jsonl_same_size_pinned_mtime_rewrite_moves_the_token(
        self, tmp_path
    ):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append([_record("a", value=1.0)])
        before = store.change_token()
        # An external writer rewrites the record in place: same byte
        # count, and the mtime pinned back to the original tick.
        raw = store.path.read_bytes()
        stat = store.path.stat()
        store.path.write_bytes(
            raw.replace(b'"total_seconds": 1.0', b'"total_seconds": 2.0')
        )
        os.utime(store.path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        after = store.change_token()
        assert after[:2] == before[:2]  # the old stat key would miss this
        assert after != before  # the content fingerprint does not

    def test_sqlite_external_commit_moves_the_token(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = SQLiteStore(path)
        store.append([_record("a", value=1.0)])
        before = store.change_token()
        # Another connection (an external process, as far as SQLite is
        # concerned) upserts the same row: same row count, same size.
        SQLiteStore(path).append([_record("a", value=2.0)])
        after = store.change_token()
        assert after is not None
        assert after[0] > before[0]  # PRAGMA data_version moved

    def test_sqlite_token_survives_held_writer_lock(self, tmp_path):
        # Regression: the long-lived token connection set no
        # busy_timeout, so a writer holding the database lock made
        # `PRAGMA data_version` raise and the token degrade to None --
        # disabling the server's caches under exactly the concurrent
        # write load they exist for.  With the timeout the token call
        # waits the writer out.
        import sqlite3
        import threading

        path = tmp_path / "s.sqlite"
        store = SQLiteStore(path)
        store.append([_record("a")])
        assert store.change_token() is not None  # token connection is live

        writer = sqlite3.connect(path, check_same_thread=False)
        writer.execute("BEGIN EXCLUSIVE")  # hold the write lock
        release = threading.Timer(0.5, writer.commit)
        release.start()
        try:
            token = store.change_token()
        finally:
            release.join()
            writer.close()
        assert token is not None

    def test_sqlite_token_survives_file_replacement(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = SQLiteStore(path)
        store.append([_record("a")])
        before = store.change_token()
        # The file is replaced wholesale (new inode): the held token
        # connection must be reopened, not read through the old inode.
        path.unlink()
        SQLiteStore(path).append([_record("a"), _record("b")])
        after = store.change_token()
        assert after is not None and after != before
        assert len(store) == 2
