"""Tests for Pareto / top-k / geomean queries over DSE records."""

import math

import pytest

from repro.dse import (
    SweepSpec,
    clear_memo,
    filter_records,
    geomean_speedup,
    metric,
    pareto_frontier,
    render_records,
    run_query,
    run_sweep,
    top_k,
)


def _rec(key, seconds, energy, workload="W", platform="P", memory="M"):
    return {
        "hash": key,
        "workload": workload,
        "platform": platform,
        "memory": memory,
        "policy": "homogeneous-8bit",
        "batch": 1,
        "metrics": {
            "total_seconds": seconds,
            "total_energy_j": energy,
            "perf_per_watt": 1.0 / (seconds * energy),
        },
    }


class TestMetric:
    def test_reads_value(self):
        assert metric(_rec("a", 2.0, 3.0), "total_seconds") == 2.0

    def test_unknown_metric_lists_available(self):
        with pytest.raises(KeyError, match="total_seconds"):
            metric(_rec("a", 2.0, 3.0), "latency_ns")


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        records = [
            _rec("a", 1.0, 4.0),
            _rec("b", 2.0, 2.0),
            _rec("c", 4.0, 1.0),
            _rec("d", 3.0, 3.0),  # dominated by b
            _rec("e", 2.0, 2.5),  # dominated by b
        ]
        frontier = pareto_frontier(records)
        assert [r["hash"] for r in frontier] == ["a", "b", "c"]

    def test_ties_all_kept(self):
        records = [_rec("a", 1.0, 1.0), _rec("b", 1.0, 1.0)]
        assert len(pareto_frontier(records)) == 2

    def test_max_sense(self):
        records = [_rec("a", 1.0, 2.0), _rec("b", 2.0, 2.0), _rec("c", 3.0, 3.0)]
        frontier = pareto_frontier(
            records, objectives=("perf_per_watt",), senses=("max",)
        )
        assert [r["hash"] for r in frontier] == ["a"]

    def test_sense_validation(self):
        with pytest.raises(ValueError):
            pareto_frontier([_rec("a", 1, 1)], senses=("min",))
        with pytest.raises(ValueError):
            pareto_frontier(
                [_rec("a", 1, 1)],
                objectives=("total_seconds",),
                senses=("down",),
            )


class TestTopK:
    def test_min_sense(self):
        records = [_rec("a", 3.0, 1.0), _rec("b", 1.0, 1.0), _rec("c", 2.0, 1.0)]
        best = top_k(records, "total_seconds", k=2)
        assert [r["hash"] for r in best] == ["b", "c"]

    def test_max_sense(self):
        records = [_rec("a", 3.0, 1.0), _rec("b", 1.0, 1.0)]
        best = top_k(records, "perf_per_watt", k=1, sense="max")
        assert [r["hash"] for r in best] == ["b"]

    def test_k_larger_than_set(self):
        records = [_rec("a", 1.0, 1.0)]
        assert len(top_k(records, "total_seconds", k=10)) == 1


class TestGeomeanSpeedup:
    def _records(self):
        out = []
        for workload, base_s, cand_s in (("A", 4.0, 2.0), ("B", 9.0, 1.0)):
            out.append(_rec(f"b{workload}", base_s, 1.0, workload, "Base", "M"))
            out.append(_rec(f"c{workload}", cand_s, 1.0, workload, "Cand", "M"))
        return out

    def test_pairs_by_workload(self):
        speedup = geomean_speedup(
            self._records(), {"platform": "Base"}, {"platform": "Cand"}
        )
        assert speedup == pytest.approx(math.sqrt(2.0 * 9.0))

    def test_no_overlap_raises(self):
        with pytest.raises(ValueError):
            geomean_speedup(
                self._records(), {"platform": "Base"}, {"platform": "Nope"}
            )

    def test_ambiguous_filter_raises(self):
        records = self._records() + [_rec("dup", 5.0, 1.0, "A", "Base", "M2")]
        with pytest.raises(ValueError):
            geomean_speedup(records, {"platform": "Base"}, {"platform": "Cand"})

    def test_on_real_sweep(self):
        clear_memo()
        spec = SweepSpec.grid(
            workloads=("LSTM", "RNN"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4",),
            batches=(1,),
        )
        records = run_sweep(spec).records
        speedup = geomean_speedup(
            records,
            baseline={"platform": "TPU-like baseline"},
            candidate={"platform": "BPVeC"},
        )
        assert speedup > 0.5  # well-defined, positive


class TestRunQuery:
    """The served dispatcher over the same query functions."""

    def _records(self):
        return [
            _rec("a", 1.0, 3.0, workload="RNN"),
            _rec("b", 2.0, 2.0, workload="LSTM"),
            _rec("c", 3.0, 1.0, workload="RNN"),
            _rec("d", 3.0, 3.0, workload="RNN"),  # dominated
        ]

    def test_pareto_dispatch_matches_direct_call(self):
        records = self._records()
        assert run_query(records, "pareto") == pareto_frontier(records)

    def test_top_k_dispatch(self):
        best = run_query(
            self._records(),
            "top-k",
            {"objective": "total_seconds", "k": 2, "sense": "min"},
        )
        assert [r["hash"] for r in best] == ["a", "b"]

    def test_where_filter_applies_first(self):
        only = run_query(
            self._records(), "pareto", {"where": {"workload": "LSTM"}}
        )
        assert [r["hash"] for r in only] == ["b"]

    def test_accuracy_frontier_dispatch(self):
        result = run_query(
            self._records(),
            "accuracy-frontier",
            {"accuracy_by_policy": {"homogeneous-8bit": 0.9}},
        )
        assert result
        assert all(r["metrics"]["accuracy"] == 0.9 for r in result)

    def test_unknown_query_and_leftover_params_raise(self):
        with pytest.raises(KeyError, match="unknown query"):
            run_query([], "bogus")
        with pytest.raises(ValueError, match="parameters"):
            run_query([], "pareto", {"bogus": 1})
        with pytest.raises(ValueError, match="accuracy_by_policy"):
            run_query([], "accuracy-frontier")

    def test_string_objectives_rejected_not_exploded(self):
        # tuple("total_seconds") would silently become 13 one-letter
        # objectives; the dispatcher must reject bare strings upfront.
        with pytest.raises(ValueError, match="lists, not bare strings"):
            run_query(self._records(), "pareto", {"objectives": "total_seconds"})
        with pytest.raises(ValueError, match="lists, not bare strings"):
            run_query(self._records(), "pareto", {"senses": "min"})

    def test_non_mapping_where_rejected(self):
        # Falsy non-mappings ([] / "" / 0) are caller bugs, not "no
        # filter" -- only None and {} mean unfiltered.
        for bad in ("LSTM", [], "", 0, False):
            with pytest.raises(ValueError, match="where"):
                filter_records(self._records(), bad)
        assert filter_records(self._records(), None) == self._records()
        assert filter_records(self._records(), {}) == self._records()


class TestRenderRecords:
    def test_table_shape(self):
        text = render_records([_rec("a", 0.001, 0.002)])
        lines = text.splitlines()
        assert lines[0].startswith("Workload")
        assert len(lines) == 3  # header, rule, one row

    def test_gpu_record_renders_dash_memory(self):
        record = _rec("a", 0.001, 0.002)
        record["memory"] = None
        record["batch"] = None
        assert "-" in render_records([record])
