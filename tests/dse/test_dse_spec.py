"""Tests for sweep specs, registries, and config hashing."""

import pytest

from repro.dse import (
    SweepPoint,
    SweepSpec,
    build_network,
    expand_grid,
    resolve_memory,
    resolve_platform,
    resolve_policy,
    resolve_workload,
    shard_index,
)
from repro.hw import BPVEC, DDR4, HBM2, TPU_LIKE


class TestRegistries:
    def test_workload_case_insensitive(self):
        assert resolve_workload("lstm") == "LSTM"
        assert resolve_workload("ALEXNET") == "AlexNet"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            resolve_workload("VGG-99")

    def test_platform_by_name_and_spec(self):
        assert resolve_platform("bpvec") is BPVEC
        assert resolve_platform("tpu") is TPU_LIKE
        assert resolve_platform(BPVEC) is BPVEC

    def test_platform_from_dict_roundtrip(self):
        from dataclasses import asdict

        rebuilt = resolve_platform(asdict(BPVEC))
        assert rebuilt == BPVEC

    def test_memory_resolution(self):
        assert resolve_memory("hbm2") is HBM2
        with pytest.raises(KeyError):
            resolve_memory("gddr7")

    def test_named_policies(self):
        net = build_network("LSTM")
        resolve_policy("homogeneous-8bit")(net)
        assert net.bitwidth("lstm1").activations == 8

    def test_uniform_policy_parsing(self):
        net = build_network("RNN")
        resolve_policy("uniform-3x5")(net)
        bw = net.bitwidth("rnn1")
        assert (bw.activations, bw.weights) == (3, 5)

    def test_uniform_policy_out_of_range(self):
        with pytest.raises(KeyError):
            resolve_policy("uniform-9x2")

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            resolve_policy("int3-magic")

    def test_build_network_batch(self):
        assert build_network("AlexNet", batch=4).batch == 4
        assert build_network("RNN").batch == 16  # builder default


class TestExpandGrid:
    def test_order_last_axis_fastest(self):
        cells = expand_grid({"a": (1, 2), "b": ("x", "y")})
        assert cells == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_counts(self):
        assert len(expand_grid({"a": range(3), "b": range(4), "c": range(5)})) == 60


class TestSweepPoint:
    def test_asic_point_requires_platform_and_memory(self):
        with pytest.raises(ValueError):
            SweepPoint(workload="LSTM", platform=BPVEC)

    def test_gpu_and_asic_mutually_exclusive(self):
        from repro.baselines.gpu import RTX_2080_TI

        with pytest.raises(ValueError):
            SweepPoint(
                workload="LSTM", gpu=RTX_2080_TI, platform=BPVEC, memory=DDR4
            )

    def test_gpu_precision_validated(self):
        from repro.baselines.gpu import RTX_2080_TI

        with pytest.raises(ValueError):
            SweepPoint(workload="LSTM", gpu=RTX_2080_TI, gpu_precision=6)

    def test_workload_canonicalized(self):
        point = SweepPoint(workload="lstm", platform=BPVEC, memory=DDR4)
        assert point.workload == "LSTM"

    def test_hash_stable_and_name_insensitive(self):
        a = SweepPoint(workload="lstm", platform=BPVEC, memory=DDR4)
        b = SweepPoint(workload="LSTM", platform=resolve_platform("bpvec"), memory=DDR4)
        assert a.config_hash() == b.config_hash()

    def test_hash_differs_across_configs(self):
        base = SweepPoint(workload="LSTM", platform=BPVEC, memory=DDR4)
        variants = [
            SweepPoint(workload="RNN", platform=BPVEC, memory=DDR4),
            SweepPoint(workload="LSTM", platform=TPU_LIKE, memory=DDR4),
            SweepPoint(workload="LSTM", platform=BPVEC, memory=HBM2),
            SweepPoint(workload="LSTM", platform=BPVEC, memory=DDR4, batch=4),
            SweepPoint(
                workload="LSTM",
                platform=BPVEC,
                memory=DDR4,
                policy="paper-heterogeneous",
            ),
        ]
        hashes = {p.config_hash() for p in (base, *variants)}
        assert len(hashes) == len(variants) + 1

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            SweepPoint(workload="LSTM", platform=BPVEC, memory=DDR4, batch=0)


class TestSweepSpec:
    def test_grid_count_and_order(self):
        spec = SweepSpec.grid(
            workloads=("LSTM", "RNN"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4",),
            batches=(1, 2),
        )
        assert len(spec) == 2 * 2 * 1 * 2
        first = spec.points[0]
        assert (first.workload, first.batch, first.platform.name) == (
            "LSTM",
            1,
            "TPU-like baseline",
        )

    def test_empty_spec_representable(self):
        # An empty shard of a fine partition is a legal (if unrunnable)
        # spec; the engine's batch API still rejects running it.
        from repro.dse import run_sweep

        spec = SweepSpec(points=())
        assert len(spec) == 0
        with pytest.raises(ValueError):
            run_sweep(spec)

    def test_from_dict_grid(self):
        spec = SweepSpec.from_dict(
            {
                "grid": {
                    "workloads": ["LSTM"],
                    "platforms": ["bpvec"],
                    "memories": ["ddr4", "hbm2"],
                    "policies": ["uniform-4x4"],
                    "batches": [1, 8],
                }
            }
        )
        assert len(spec) == 4
        assert all(p.policy == "uniform-4x4" for p in spec)

    def test_from_dict_points(self):
        spec = SweepSpec.from_dict(
            {
                "points": [
                    {"workload": "LSTM", "platform": "bpvec", "memory": "ddr4"},
                    {"workload": "RNN", "gpu": "rtx-2080-ti", "precision": 4},
                ]
            }
        )
        assert spec.points[0].kind == "asic"
        assert spec.points[1].kind == "gpu"
        assert spec.points[1].gpu_precision == 4

    def test_from_dict_requires_grid_or_points(self):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"sweep": []})

    def test_grid_requires_workloads(self):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"grid": {"platforms": ["bpvec"]}})


class TestShard:
    def _spec(self):
        return SweepSpec.grid(
            workloads=("LSTM", "RNN", "AlexNet"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            batches=(1, 2),
        )

    def test_shards_partition_the_spec(self):
        spec = self._spec()
        for count in (1, 2, 3, 5):
            shards = [spec.shard(i, count) for i in range(count)]
            assert sum(len(s) for s in shards) == len(spec)
            owned = [
                {p.config_hash() for p in shard.points} for shard in shards
            ]
            for i in range(count):
                for j in range(i + 1, count):
                    assert not owned[i] & owned[j]
            assert set.union(*owned) == {p.config_hash() for p in spec}

    def test_shard_preserves_relative_order(self):
        spec = self._spec()
        positions = {p.config_hash(): i for i, p in enumerate(spec.points)}
        shard = spec.shard(0, 2)
        indices = [positions[p.config_hash()] for p in shard.points]
        assert indices == sorted(indices)

    def test_shard_assignment_is_stable(self):
        # The partition depends only on the hash, not on the spec: the
        # same point lands in the same shard from any sweep.
        spec = self._spec()
        for point in spec.shard(1, 3).points:
            assert shard_index(point.config_hash(), 3) == 1
            assert point in SweepSpec(points=(point,)).shard(1, 3).points

    def test_single_shard_is_identity(self):
        spec = self._spec()
        assert spec.shard(0, 1).points == spec.points

    def test_shard_validation(self):
        spec = self._spec()
        with pytest.raises(ValueError):
            spec.shard(0, 0)
        with pytest.raises(ValueError):
            spec.shard(2, 2)
        with pytest.raises(ValueError):
            spec.shard(-1, 2)
        with pytest.raises(ValueError):
            shard_index("ff" * 32, 0)

    def test_shard_index_range(self):
        for count in (1, 2, 7, 64):
            assert shard_index("00" * 32, count) == 0
            assert shard_index("ff" * 32, count) == count - 1


class TestChunks:
    def _spec(self):
        return SweepSpec.grid(
            workloads=("LSTM", "RNN", "AlexNet"),
            platforms=("tpu", "bpvec"),
            memories=("ddr4", "hbm2"),
            batches=(1, 2),
        )

    def test_chunks_partition_the_spec(self):
        spec = self._spec()
        for count in (1, 2, 3, 8):
            chunks = spec.chunks(count)
            assert sum(len(c) for _, c in chunks) == len(spec)
            owned = [{p.config_hash() for p in c.points} for _, c in chunks]
            for i in range(len(owned)):
                for j in range(i + 1, len(owned)):
                    assert not owned[i] & owned[j]
            assert set.union(*owned) == {p.config_hash() for p in spec}

    def test_chunks_match_shard_partition(self):
        # chunks(n) and [shard(i, n) for i in range(n)] are the same
        # hash-range partition: a fleet chunk and a launch shard with
        # the same index own exactly the same points.
        spec = self._spec()
        for count in (2, 5):
            for index, chunk in spec.chunks(count):
                assert chunk.points == spec.shard(index, count).points

    def test_empty_chunks_are_dropped(self):
        single = SweepSpec(points=self._spec().points[:1])
        chunks = single.chunks(64)
        assert len(chunks) == 1
        assert len(chunks[0][1]) == 1

    def test_chunk_indices_are_sorted(self):
        indices = [index for index, _ in self._spec().chunks(8)]
        assert indices == sorted(indices)

    def test_chunks_validation(self):
        with pytest.raises(ValueError):
            self._spec().chunks(0)
