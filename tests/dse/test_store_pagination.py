"""Keyset-pagination contract, parametrized over all three backends.

``iter_page(after, limit, version)`` is the primitive behind
``GET /records?after=&limit=``: each backend streams resolution
survivors in hash order without materializing the store (SQLite via
``ORDER BY hash LIMIT``, JSONL via a bounded two-pass scan, the
partitioned store by walking hash-range parts).  The contract every
backend must agree on, bit-identically:

* records come in strict hash (string sort) order, survivors only;
* ``after=H`` resumes strictly past ``H`` -- including mid-dump writes:
  a record upserted behind the cursor is invisible, one ahead of it is
  served;
* ``limit`` is exact (no off-by-one at page boundaries);
* an exhausted cursor yields an empty page, the termination signal.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dse import open_store

BACKENDS = ("jsonl", "sqlite", "partitioned")
_SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite", "partitioned": ".parts"}


def _record(key, value=1.0, version=1):
    return {"hash": key, "version": version, "metrics": {"total_seconds": value}}


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def make_store(backend, tmp_path):
    def _make(name="s"):
        return open_store(tmp_path / f"{name}{_SUFFIX[backend]}", backend=backend)

    _make.backend = backend
    return _make


def _fill(store, count, prefix="k"):
    # Zero-padded keys so string sort order is also numeric order.
    records = [_record(f"{prefix}{i:04d}", float(i)) for i in range(count)]
    store.append(records)
    return sorted(record["hash"] for record in records)


def _page(store, after=None, limit=None, version=None):
    return list(store.iter_page(after=after, limit=limit, version=version))


class TestPageContract:
    def test_full_walk_equals_load(self, make_store):
        store = make_store()
        keys = _fill(store, 25)
        pages, after = [], None
        while True:
            page = _page(store, after=after, limit=10)
            if not page:
                break
            pages.append(page)
            after = page[-1]["hash"]
        assert [len(page) for page in pages] == [10, 10, 5]
        walked = [record for page in pages for record in page]
        assert [record["hash"] for record in walked] == keys
        assert {r["hash"]: r for r in walked} == store.load()

    def test_missing_store_yields_nothing(self, make_store):
        assert _page(make_store("absent"), limit=5) == []

    def test_limit_boundaries_are_exact(self, make_store):
        store = make_store()
        _fill(store, 10)
        assert len(_page(store, limit=9)) == 9
        assert len(_page(store, limit=10)) == 10
        assert len(_page(store, limit=11)) == 10
        assert len(_page(store, limit=1)) == 1
        assert len(_page(store)) == 10  # no limit: everything

    def test_invalid_limit_rejected(self, make_store):
        store = make_store()
        _fill(store, 3)
        for bad in (0, -1):
            with pytest.raises(ValueError, match="limit"):
                _page(store, limit=bad)

    def test_after_is_strict_and_terminates(self, make_store):
        store = make_store()
        keys = _fill(store, 10)
        assert [r["hash"] for r in _page(store, after=keys[3])] == keys[4:]
        # A cursor between keys (no such record) still resumes cleanly.
        assert [r["hash"] for r in _page(store, after=keys[3] + "0")] == keys[4:]
        assert _page(store, after=keys[-1]) == []  # exhausted: empty page
        assert _page(store, after="zzzz") == []

    def test_resumes_across_concurrent_upsert(self, make_store):
        # The dump-consistency story: a write landing mid-dump behind
        # the cursor is invisible; ahead of the cursor it is served at
        # its new value.  No record is ever seen twice.
        store = make_store()
        keys = _fill(store, 8)
        first = _page(store, limit=4)
        cursor = first[-1]["hash"]
        store.append(
            [
                _record(keys[0], 99.0),  # behind the cursor: invisible
                _record(keys[6], 42.0),  # ahead of the cursor: served fresh
            ]
        )
        rest = _page(store, after=cursor)
        assert [r["hash"] for r in rest] == keys[4:]
        by_hash = {r["hash"]: r for r in first + rest}
        assert len(by_hash) == 8  # nothing served twice
        assert by_hash[keys[6]]["metrics"]["total_seconds"] == 42.0
        assert by_hash[keys[0]]["metrics"]["total_seconds"] == 0.0

    def test_version_filter_applies_after_resolution(self, make_store):
        store = make_store()
        store.append(
            [
                _record("a", version=2),
                _record("b", version=1),
                _record("c", version=2),
            ]
        )
        store.append([_record("b", version=2)])  # b upgraded
        assert [r["hash"] for r in _page(store, version=2)] == ["a", "b", "c"]
        assert _page(store, version=1) == []  # the stale b line is dead

    def test_pages_are_bit_identical_across_backends(self, backend, tmp_path):
        # The serialized page stream must not depend on the backend.
        stores = {
            name: open_store(tmp_path / f"x{_SUFFIX[name]}", backend=name)
            for name in BACKENDS
        }
        for store in stores.values():
            _fill(store, 17)
            store.append([_record("k0003", 123.456)])
        dumps = {
            name: json.dumps(_page(store, after="k0001", limit=7), sort_keys=True)
            for name, store in stores.items()
        }
        assert len(set(dumps.values())) == 1


class TestPaginationProperty:
    """Paginated walk == unpaginated dump, for any store content."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seeds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),  # key id
                st.integers(min_value=0, max_value=3),  # version
                st.integers(min_value=0, max_value=99),  # payload
            ),
            max_size=60,
        ),
        page_size=st.integers(min_value=1, max_value=9),
        version=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    )
    def test_walk_equals_dump(self, tmp_path_factory, seeds, page_size, version):
        root = tmp_path_factory.mktemp("pagination")
        for backend in BACKENDS:
            store = open_store(
                root / f"s{_SUFFIX[backend]}", backend=backend
            )
            for key_id, record_version, payload in seeds:
                store.append(
                    [_record(f"k{key_id:02d}", float(payload), record_version)]
                )
            walked, after = [], None
            while True:
                page = _page(store, after=after, limit=page_size, version=version)
                if not page:
                    break
                assert len(page) <= page_size
                walked.extend(page)
                after = page[-1]["hash"]
            expected = [
                store.load()[key]
                for key in sorted(store.load())
                if version is None
                or store.load()[key].get("version", 0) == version
            ]
            assert walked == expected
