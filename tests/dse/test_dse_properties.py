"""Property-based tests for the DSE engine and core simulator invariants.

Five invariants pinned down across issues:

* a cache hit (memo or JSON store round-trip) is bit-identical to the
  cold evaluation that produced it;
* a Pareto frontier contains no dominated point, and every excluded
  point is dominated by some frontier point -- and the incremental
  tracker agrees with the batch computation on any stream;
* hash-range shards are pairwise disjoint and cover the spec for any
  shard count;
* merging per-shard stores reproduces the single-store run
  record-for-record;
* ``simulate_layer`` cycles are monotone non-increasing as the array
  grows (more columns can only help or tie, never hurt).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    ParetoTracker,
    ResultStore,
    SweepPoint,
    SweepSpec,
    clear_memo,
    evaluate_point,
    pareto_frontier,
    run_sweep,
    shard_index,
)
from repro.hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE, with_units
from repro.nn.models import WORKLOAD_BUILDERS
from repro.sim.performance import simulate_layer


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_platforms = st.sampled_from([TPU_LIKE, BITFUSION, BPVEC])
_memories = st.sampled_from([DDR4, HBM2])
# Small batches keep a single example in the low milliseconds.
_points = st.builds(
    SweepPoint,
    workload=st.sampled_from(sorted(WORKLOAD_BUILDERS)),
    policy=st.sampled_from(
        ["homogeneous-8bit", "paper-heterogeneous", "uniform-4x4", "uniform-2x6"]
    ),
    platform=_platforms,
    memory=_memories,
    batch=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
)

_metric_vectors = st.lists(
    st.tuples(
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


# ----------------------------------------------------------------------
# Invariant 1: warm results are bit-identical to cold evaluation
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(point=_points)
def test_cache_hit_bit_identical_to_cold(point, tmp_path_factory):
    cold = evaluate_point(point)

    # JSON store round-trip preserves every float bit-for-bit.
    store = ResultStore(
        tmp_path_factory.mktemp("dse") / f"{point.config_hash()[:12]}.jsonl"
    )
    store.append([cold])
    warm = store.load()[point.config_hash()]
    assert warm == cold

    # The engine's memo tier returns the identical record too.
    clear_memo()
    first = run_sweep([point]).records[0]
    second = run_sweep([point]).records[0]
    assert first == cold
    assert second is first

    # And a raw JSON text round-trip agrees (belt and braces).
    assert json.loads(json.dumps(cold)) == cold


# ----------------------------------------------------------------------
# Invariant 2: Pareto frontiers are dominated-point-free and complete
# ----------------------------------------------------------------------
def _dominates(a, b):
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


@settings(max_examples=200, deadline=None)
@given(vectors=_metric_vectors)
def test_pareto_frontier_dominated_point_free(vectors):
    records = [
        {
            "hash": str(i),
            "metrics": {"total_seconds": s, "total_energy_j": e},
        }
        for i, (s, e) in enumerate(vectors)
    ]
    frontier = pareto_frontier(records)
    vec = {
        r["hash"]: (r["metrics"]["total_seconds"], r["metrics"]["total_energy_j"])
        for r in records
    }

    assert frontier, "a non-empty record set always has a frontier"
    frontier_keys = {r["hash"] for r in frontier}
    # No frontier point is dominated by any record.
    for f in frontier:
        assert not any(
            _dominates(vec[r["hash"]], vec[f["hash"]]) for r in records
        )
    # Every excluded point is dominated by some frontier point.
    for r in records:
        if r["hash"] not in frontier_keys:
            assert any(_dominates(vec[k], vec[r["hash"]]) for k in frontier_keys)


@settings(max_examples=200, deadline=None)
@given(vectors=_metric_vectors)
def test_pareto_tracker_matches_batch_frontier(vectors):
    records = [
        {
            "hash": str(i),
            "metrics": {"total_seconds": s, "total_energy_j": e},
        }
        for i, (s, e) in enumerate(vectors)
    ]
    tracker = ParetoTracker()
    for record in records:
        tracker.add(record)
    assert tracker.seen == len(records)
    assert [r["hash"] for r in tracker.frontier] == [
        r["hash"] for r in pareto_frontier(records)
    ]


# ----------------------------------------------------------------------
# Invariant 3: shards partition the spec; merged shards == single run
# ----------------------------------------------------------------------
# A small pool keeps the number of distinct configs tiny, so the memo
# makes every example after the first evaluation near-free.
_pool_points = st.builds(
    SweepPoint,
    workload=st.sampled_from(["LSTM", "RNN"]),
    platform=st.sampled_from([TPU_LIKE, BPVEC]),
    memory=st.just(DDR4),
    batch=st.just(1),
)


@settings(max_examples=50, deadline=None)
@given(points=st.lists(_points, min_size=1, max_size=8), n=st.integers(1, 7))
def test_shards_disjoint_and_cover_spec(points, n):
    spec = SweepSpec(points=tuple(points))
    shards = [spec.shard(i, n) for i in range(n)]
    # Cover: every point lands in exactly one shard, order preserved.
    assert sum(len(s) for s in shards) == len(spec)
    for shard, index in ((s, i) for i, s in enumerate(shards)):
        for point in shard.points:
            assert shard_index(point.config_hash(), n) == index
    # Disjoint: no hash appears in two shards.
    owned = [{p.config_hash() for p in s.points} for s in shards]
    assert sum(len(o) for o in owned) == len(
        {p.config_hash() for p in spec.points}
    )


@settings(max_examples=15, deadline=None)
@given(
    points=st.lists(_pool_points, min_size=1, max_size=6),
    n=st.integers(1, 4),
)
def test_merged_shard_stores_equal_single_store_run(
    points, n, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("shards")
    spec = SweepSpec(points=tuple(points))

    single = ResultStore(tmp / "single.jsonl")
    run_sweep(spec, store=single)

    shard_paths = []
    for index in range(n):
        shard = spec.shard(index, n)
        path = tmp / f"shard{index}.jsonl"
        if len(shard):
            run_sweep(shard, store=path)
        shard_paths.append(path)  # empty shards never created a store

    merged = ResultStore(tmp / "merged.jsonl")
    merged.merge(shard_paths)
    assert merged.load() == single.load()


# ----------------------------------------------------------------------
# Invariant 4: more array never means more cycles
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    base=_platforms,
    memory=_memories,
    workload=st.sampled_from(["AlexNet", "ResNet-18", "RNN", "LSTM"]),
    policy=st.sampled_from(["homogeneous-8bit", "paper-heterogeneous"]),
    layer_index=st.integers(min_value=0, max_value=30),
)
def test_layer_cycles_monotone_in_array_size(
    base, memory, workload, policy, layer_index
):
    from repro.dse import build_network, resolve_policy

    network = build_network(workload, batch=2)
    resolve_policy(policy)(network)
    weighted = network.weighted_layers
    layer = weighted[layer_index % len(weighted)]

    previous = None
    for scale in (1, 2, 4, 8):
        spec = with_units(base, base.num_macs * scale)
        result = simulate_layer(layer, network, spec, memory)
        assert result is not None
        if previous is not None:
            assert result.cycles <= previous.cycles
            assert result.compute_cycles <= previous.compute_cycles
        previous = result
