"""Property-based tests for the policy sweep axis.

Two invariants pin the tentpole of the quant--hardware co-exploration:

* **Round-trip**: any per-layer assignment -- whatever container
  spelled it (tuples, lists, bare ints, JSON, canonical name) -- lands
  on one :class:`PolicySpec` with one canonical name, one hash, and one
  sweep-point config hash.
* **Bit-identity**: the vectorized evaluator agrees with the scalar
  simulator float-for-float under *arbitrary* per-layer policies, not
  just the named ones the figures use.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    PolicySpec,
    SweepPoint,
    evaluate_point,
    evaluate_points,
    policy_name,
    resolve_policy,
)
from repro.hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE

_pairs = st.tuples(
    st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)
_layer_lists = st.lists(_pairs, min_size=1, max_size=6)
_platforms = st.sampled_from([TPU_LIKE, BITFUSION, BPVEC])
_memories = st.sampled_from([DDR4, HBM2])

# RNN has two weighted layers; small batches keep one example cheap.
_rnn_policies = st.lists(_pairs, min_size=2, max_size=2)


# ----------------------------------------------------------------------
# Round-trip: every spelling is one canonical policy
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(layers=_layer_lists)
def test_policy_spec_round_trips_through_every_surface(layers):
    spec = PolicySpec(layers=tuple(layers))

    # Canonical name parses back to an equal (and equal-hashing) spec.
    assert PolicySpec.from_name(spec.name) == spec
    assert hash(PolicySpec.from_name(spec.name)) == hash(spec)

    # JSON dict round-trip (tuples -> lists -> tuples) is lossless.
    reloaded = PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert reloaded == spec
    assert reloaded.name == spec.name

    # List and tuple spellings canonicalize identically.
    assert PolicySpec(layers=[list(pair) for pair in layers]) == spec

    # policy_name agrees across spec / name / dict / bare-sequence forms.
    names = {
        policy_name(spec),
        policy_name(spec.name),
        policy_name({"layers": [list(pair) for pair in layers]}),
        policy_name([list(pair) for pair in layers]),
    }
    assert names == {spec.name}

    # And the name resolves to an applier everywhere.
    assert resolve_policy(spec.name) == spec


@settings(max_examples=50, deadline=None)
@given(layers=_rnn_policies, platform=_platforms, memory=_memories)
def test_sweep_point_hash_invariant_under_policy_spelling(layers, platform, memory):
    kwargs = dict(workload="RNN", platform=platform, memory=memory, batch=1)
    spec = PolicySpec(layers=tuple(layers))
    spellings = [
        SweepPoint(policy=spec, **kwargs),
        SweepPoint(policy=spec.name, **kwargs),
        SweepPoint(policy=[list(pair) for pair in layers], **kwargs),
        SweepPoint(
            policy=json.loads(json.dumps({"layers": layers})), **kwargs
        ),
    ]
    assert len({point.config_hash() for point in spellings}) == 1
    assert len({point.policy for point in spellings}) == 1


@settings(max_examples=100, deadline=None)
@given(bits=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=8))
def test_assignment_ints_round_trip(bits):
    # The shape assign_bitwidths emits: one symmetric width per layer.
    spec = PolicySpec.from_assignment(bits)
    assert spec.layers == tuple((b, b) for b in bits)
    assert PolicySpec.from_name(spec.name) == spec


# ----------------------------------------------------------------------
# Bit-identity: vectorized == scalar under arbitrary policies
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    layers=_rnn_policies,
    platform=_platforms,
    memory=_memories,
    batch=st.integers(min_value=1, max_value=4),
)
def test_vectorized_bit_identical_under_arbitrary_policy(
    layers, platform, memory, batch
):
    point = SweepPoint(
        workload="RNN",
        policy=PolicySpec(layers=tuple(layers)),
        platform=platform,
        memory=memory,
        batch=batch,
    )
    assert evaluate_points([point]) == [evaluate_point(point)]


@settings(max_examples=10, deadline=None)
@given(
    policies=st.lists(_rnn_policies, min_size=2, max_size=4, unique_by=tuple),
    memory=_memories,
)
def test_vectorized_chunk_of_mixed_policies_bit_identical(policies, memory):
    # One chunk mixing several lowered keys: grouping by policy must not
    # reorder or cross-contaminate records.
    points = [
        SweepPoint(
            workload="RNN",
            policy=PolicySpec(layers=tuple(layers)),
            platform=platform,
            memory=memory,
            batch=1,
        )
        for layers in policies
        for platform in (TPU_LIKE, BPVEC)
    ]
    assert evaluate_points(points) == [evaluate_point(p) for p in points]
