"""Tests that the six workloads reproduce Table I."""

import pytest

from repro.nn import (
    WORKLOAD_BUILDERS,
    alexnet,
    homogeneous_8bit,
    inception_v1,
    lstm_workload,
    paper_heterogeneous,
    paper_workloads,
    resnet18,
    resnet50,
    rnn_workload,
)

# Table I targets: (model size MB @ INT8, GOps for the evaluated batch).
TABLE1 = {
    "AlexNet": (56.1, 2678),
    "Inception-v1": (8.6, 1860),
    "ResNet-18": (11.1, 4269),
    "ResNet-50": (24.4, 8030),
    "RNN": (16.0, 17),
    "LSTM": (12.3, 13),
}


@pytest.fixture(scope="module")
def workloads():
    return {net.name: net for net in paper_workloads()}


class TestTable1:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_model_size_close_to_paper(self, workloads, name):
        """INT8 model sizes within 25% of Table I (shape variants differ)."""
        size_mb = workloads[name].model_bytes(bits=8) / 1e6
        paper_mb = TABLE1[name][0]
        assert abs(size_mb - paper_mb) / paper_mb < 0.25

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_gops_close_to_paper(self, workloads, name):
        """Batch sizes are calibrated so GOps matches Table I within 6%."""
        gops = workloads[name].total_ops() / 1e9
        paper_gops = TABLE1[name][1]
        assert abs(gops - paper_gops) / paper_gops < 0.06

    def test_all_six_present(self, workloads):
        assert set(workloads) == set(TABLE1)

    def test_kinds(self, workloads):
        assert workloads["RNN"].kind == "RNN"
        assert workloads["LSTM"].kind == "RNN"
        assert workloads["ResNet-50"].kind == "CNN"


class TestKnownParameterCounts:
    def test_alexnet_61m(self):
        assert sum(l.weight_count() for l in alexnet().layers) == pytest.approx(
            61.1e6, rel=0.01
        )

    def test_resnet18_11_7m(self):
        assert sum(l.weight_count() for l in resnet18().layers) == pytest.approx(
            11.68e6, rel=0.01
        )

    def test_resnet50_25_5m(self):
        assert sum(l.weight_count() for l in resnet50().layers) == pytest.approx(
            25.5e6, rel=0.01
        )

    def test_inception_7m(self):
        assert sum(l.weight_count() for l in inception_v1().layers) == pytest.approx(
            7.0e6, rel=0.02
        )

    def test_alexnet_macs_per_image(self):
        assert alexnet(batch=1).total_macs() == pytest.approx(714e6, rel=0.01)

    def test_resnet18_macs_per_image(self):
        assert resnet18(batch=1).total_macs() == pytest.approx(1.82e9, rel=0.02)

    def test_resnet50_macs_per_image(self):
        assert resnet50(batch=1).total_macs() == pytest.approx(4.09e9, rel=0.02)


class TestRecurrentShapes:
    def test_rnn_two_layers(self):
        net = rnn_workload()
        assert len(net.layers) == 2
        assert net.batch == 16

    def test_lstm_single_layer(self):
        net = lstm_workload()
        assert len(net.layers) == 1

    def test_custom_steps(self):
        assert rnn_workload(steps=64).total_macs() == 2 * rnn_workload(
            steps=32
        ).total_macs()


class TestBitwidthPolicies:
    def test_homogeneous_all_8bit(self):
        net = homogeneous_8bit(resnet18())
        for layer in net.weighted_layers:
            bw = net.bitwidth(layer.name)
            assert (bw.activations, bw.weights) == (8, 8)
        assert not net.is_heterogeneous

    def test_first_last_8bit_policy(self):
        """Table I: AlexNet keeps first and last layers at 8-bit."""
        net = paper_heterogeneous(alexnet())
        weighted = net.weighted_layers
        assert net.bitwidth(weighted[0].name).weights == 8
        assert net.bitwidth(weighted[-1].name).weights == 8
        for layer in weighted[1:-1]:
            assert net.bitwidth(layer.name).weights == 4
        assert net.is_heterogeneous

    def test_all_4bit_policy(self):
        for builder in (resnet50, rnn_workload, lstm_workload):
            net = paper_heterogeneous(builder())
            for layer in net.weighted_layers:
                assert net.bitwidth(layer.name).weights == 4
            assert not net.is_heterogeneous  # uniform 4-bit

    def test_unknown_model_rejected(self):
        from repro.nn import Dense, Network

        net = Network("Custom", [Dense("fc", 8, 8)])
        with pytest.raises(KeyError):
            paper_heterogeneous(net)

    def test_bitwidth_assignment_validates_names(self):
        from repro.nn import LayerBitwidth

        net = alexnet()
        with pytest.raises(KeyError):
            net.set_bitwidths({"nonexistent": LayerBitwidth(4, 4)})

    def test_layer_bitwidth_range(self):
        from repro.nn import LayerBitwidth

        with pytest.raises(ValueError):
            LayerBitwidth(0, 8)
        with pytest.raises(ValueError):
            LayerBitwidth(8, 16)


class TestNetworkContainer:
    def test_duplicate_names_rejected(self):
        from repro.nn import Dense, Network

        with pytest.raises(ValueError):
            Network("X", [Dense("a", 2, 2), Dense("a", 2, 2)])

    def test_batch_must_be_positive(self):
        from repro.nn import Dense, Network

        with pytest.raises(ValueError):
            Network("X", [Dense("a", 2, 2)], batch=0)

    def test_describe_contains_layers(self):
        text = alexnet().describe()
        assert "conv1" in text and "fc8" in text

    def test_builders_registry(self):
        assert set(WORKLOAD_BUILDERS) == set(TABLE1)
