"""Tests for the layer shape algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Conv2D, Dense, Gemm, LSTMCell, Pool2D, RNNCell


class TestGemm:
    def test_counts(self):
        g = Gemm(m=4, k=8, n=16, count=2)
        assert g.macs == 4 * 8 * 16 * 2
        assert g.weight_elements == 8 * 16
        assert g.input_elements == 4 * 8 * 2
        assert g.output_elements == 4 * 16 * 2

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Gemm(m=0, k=1, n=1)
        with pytest.raises(ValueError):
            Gemm(m=1, k=1, n=1, count=0)


class TestConv2D:
    def test_output_size(self):
        conv = Conv2D("c", 3, 64, kernel=11, in_size=224, stride=4, padding=2)
        assert conv.out_size == 55

    def test_macs_alexnet_conv1(self):
        conv = Conv2D("c", 3, 64, kernel=11, in_size=224, stride=4, padding=2)
        assert conv.macs() == 64 * 3 * 11 * 11 * 55 * 55  # ~70.3M

    def test_weight_count(self):
        conv = Conv2D("c", 64, 192, kernel=5, in_size=27, padding=2)
        assert conv.weight_count() == 192 * 64 * 25

    def test_grouped_conv(self):
        grouped = Conv2D("c", 64, 64, kernel=3, in_size=14, padding=1, groups=2)
        full = Conv2D("c", 64, 64, kernel=3, in_size=14, padding=1)
        assert grouped.weight_count() == full.weight_count() // 2
        assert grouped.macs() == full.macs() // 2

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            Conv2D("c", 64, 65, kernel=3, in_size=14, groups=2)

    def test_collapsed_output_rejected(self):
        with pytest.raises(ValueError):
            Conv2D("c", 3, 8, kernel=7, in_size=3)

    def test_gemm_lowering(self):
        conv = Conv2D("c", 64, 192, kernel=5, in_size=27, padding=2)
        (g,) = conv.gemms(batch=2)
        assert g.m == 2 * 27 * 27
        assert g.k == 64 * 25
        assert g.n == 192
        assert g.macs == conv.macs(batch=2)

    def test_batch_scaling(self):
        conv = Conv2D("c", 16, 32, kernel=3, in_size=8, padding=1)
        assert conv.macs(batch=4) == 4 * conv.macs(batch=1)
        assert conv.input_elements(batch=4) == 4 * conv.input_elements()


class TestDense:
    def test_counts(self):
        fc = Dense("fc", 9216, 4096)
        assert fc.weight_count() == 9216 * 4096
        assert fc.macs(batch=3) == 3 * 9216 * 4096

    def test_gemm(self):
        (g,) = Dense("fc", 100, 10).gemms(batch=5)
        assert (g.m, g.k, g.n) == (5, 100, 10)

    def test_bytes_at_reduced_bitwidth(self):
        fc = Dense("fc", 100, 10)
        assert fc.weight_bytes(8) == 1000
        assert fc.weight_bytes(4) == 500
        assert fc.weight_bytes(2) == 250


class TestPool2D:
    def test_no_macs_no_weights(self):
        pool = Pool2D("p", 64, kernel=3, in_size=55, stride=2)
        assert pool.macs() == 0
        assert pool.weight_count() == 0
        assert not pool.has_weights
        assert pool.gemms() == []

    def test_output_size(self):
        assert Pool2D("p", 64, kernel=3, in_size=55, stride=2).out_size == 27


class TestRecurrent:
    def test_rnn_weight_count(self):
        rnn = RNNCell("r", input_size=2048, hidden_size=2048, steps=32)
        assert rnn.weight_count() == 2048 * (2048 + 2048)

    def test_lstm_has_four_gates(self):
        lstm = LSTMCell("l", input_size=2048, hidden_size=1024, steps=32)
        assert lstm.weight_count() == 4 * 1024 * (2048 + 1024)
        assert lstm.gates == 4

    def test_macs_scale_with_steps_and_batch(self):
        rnn = RNNCell("r", input_size=64, hidden_size=64, steps=10)
        assert rnn.macs(batch=4) == 4 * 10 * rnn.weight_count()

    def test_gemm_per_step(self):
        lstm = LSTMCell("l", input_size=2048, hidden_size=1024, steps=32)
        (g,) = lstm.gemms(batch=16)
        assert g.m == 16
        assert g.k == 2048 + 1024
        assert g.n == 4 * 1024
        assert g.count == 32
        assert g.macs == lstm.macs(batch=16)


@settings(max_examples=50, deadline=None)
@given(
    in_ch=st.integers(1, 64),
    out_ch=st.integers(1, 64),
    kernel=st.sampled_from([1, 3, 5]),
    in_size=st.integers(7, 56),
    batch=st.integers(1, 8),
)
def test_conv_gemm_macs_match_layer_macs(in_ch, out_ch, kernel, in_size, batch):
    conv = Conv2D(
        "c", in_ch, out_ch, kernel=kernel, in_size=in_size, padding=kernel // 2
    )
    assert sum(g.macs for g in conv.gemms(batch)) == conv.macs(batch)
