"""Tests for the ISA, lowering, and executor."""

import pytest

from repro.compiler import (
    Barrier,
    Executor,
    GemmTile,
    LoadTile,
    Program,
    SetMode,
    StoreTile,
    functional_check,
    lower_layer,
    lower_network,
)
from repro.hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import (
    Dense,
    Network,
    Pool2D,
    alexnet,
    homogeneous_8bit,
    lstm_workload,
    paper_heterogeneous,
    resnet18,
    uniform,
)
from repro.sim import simulate_network


class TestISA:
    def test_instruction_validation(self):
        with pytest.raises(ValueError):
            SetMode(0, 8)
        with pytest.raises(ValueError):
            LoadTile("cache", 10)
        with pytest.raises(ValueError):
            LoadTile("weights", -1)
        with pytest.raises(ValueError):
            StoreTile(-1)
        with pytest.raises(ValueError):
            GemmTile(0, 1, 1)

    def test_program_aggregates(self):
        p = Program()
        p.append(SetMode(8, 8))
        p.append(LoadTile("weights", 100))
        p.append(LoadTile("activations", 50))
        p.append(GemmTile(2, 3, 4, count=5))
        p.append(StoreTile(40))
        p.append(Barrier("l0"))
        assert p.total_load_bytes == 150
        assert p.total_store_bytes == 40
        assert p.total_traffic_bytes == 190
        assert p.total_macs == 2 * 3 * 4 * 5
        assert len(p) == 6
        p.validate()

    def test_validate_rejects_gemm_before_mode(self):
        p = Program([GemmTile(1, 1, 1), Barrier()])
        with pytest.raises(ValueError):
            p.validate()

    def test_validate_rejects_missing_final_barrier(self):
        p = Program([SetMode(8, 8), GemmTile(1, 1, 1)])
        with pytest.raises(ValueError):
            p.validate()

    def test_summary(self):
        p = Program([SetMode(8, 8), GemmTile(10, 10, 10), Barrier()])
        s = p.summary()
        assert "GemmTile" in s and "MMACs" in s


class TestLowering:
    def test_pool_layers_skipped(self):
        pool = Pool2D("p", 4, kernel=2, in_size=8)
        net = Network("T", [pool])
        assert lower_layer(pool, net, BPVEC) is None

    def test_layer_program_structure(self):
        layer = Dense("fc", 128, 64)
        net = uniform(Network("T", [layer], batch=4), 8, 8)
        prog = lower_layer(layer, net, BPVEC)
        kinds = [type(i).__name__ for i in prog]
        assert kinds == [
            "SetMode",
            "LoadTile",
            "LoadTile",
            "GemmTile",
            "StoreTile",
            "Barrier",
        ]

    def test_heterogeneous_modes_emitted(self):
        net = paper_heterogeneous(alexnet(batch=1))
        prog = lower_network(net, BPVEC)
        modes = {(i.bw_act, i.bw_w) for i in prog if isinstance(i, SetMode)}
        assert (8, 8) in modes and (4, 4) in modes

    def test_empty_network_rejected(self):
        net = Network("p", [Pool2D("p", 2, kernel=2, in_size=4)])
        with pytest.raises(ValueError):
            lower_network(net, BPVEC)

    def test_macs_match_network(self):
        net = homogeneous_8bit(resnet18(batch=2))
        prog = lower_network(net, BPVEC)
        assert prog.total_macs == net.total_macs()


class TestExecutorAgreesWithSimulator:
    @pytest.mark.parametrize("spec", [TPU_LIKE, BITFUSION, BPVEC])
    @pytest.mark.parametrize("memory", [DDR4, HBM2])
    def test_resnet18_cycle_agreement(self, spec, memory):
        """Executing the lowered program == analytical simulation."""
        net = homogeneous_8bit(resnet18(batch=2))
        prog = lower_network(net, spec)
        result = Executor(spec, memory).run(prog)
        sim = simulate_network(net, spec, memory)
        assert result.cycles == sim.total_cycles
        assert result.traffic_bytes == sim.total_traffic_bytes
        assert result.macs == sim.total_macs

    def test_lstm_heterogeneous_agreement(self):
        net = paper_heterogeneous(lstm_workload())
        prog = lower_network(net, BPVEC)
        result = Executor(BPVEC, DDR4).run(prog)
        sim = simulate_network(net, BPVEC, DDR4)
        assert result.cycles == sim.total_cycles

    def test_segments_equal_weighted_layers(self):
        net = homogeneous_8bit(resnet18(batch=1))
        prog = lower_network(net, BPVEC)
        result = Executor(BPVEC, DDR4).run(prog)
        assert result.segments == 21

    def test_seconds_helper(self):
        net = homogeneous_8bit(lstm_workload())
        result = Executor(BPVEC, DDR4).run(lower_network(net, BPVEC))
        assert result.seconds(500e6) == pytest.approx(result.cycles / 500e6)

    def test_gemm_before_mode_rejected_at_runtime(self):
        p = Program([SetMode(8, 8), GemmTile(1, 1, 1), Barrier()])
        p.instructions.pop(0)
        p.instructions.insert(0, Barrier())  # keep final barrier rule happy
        p2 = Program([GemmTile(1, 1, 1), Barrier()])
        with pytest.raises(ValueError):
            Executor(BPVEC, DDR4).run(p2)


class TestFunctionalCheck:
    def test_alexnet_program_semantics(self):
        net = paper_heterogeneous(alexnet(batch=1))
        prog = lower_network(net, BPVEC)
        checked = functional_check(prog, max_elements=256)
        assert checked == len([i for i in prog if isinstance(i, GemmTile)])

    def test_mismatch_detection_wiring(self):
        """A program with no mode fails fast."""
        p = Program([GemmTile(2, 2, 2), Barrier()])
        with pytest.raises(ValueError):
            functional_check(p)
