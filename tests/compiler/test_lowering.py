"""Dedicated unit tests for repro.compiler.lowering.

The lowering pass mirrors the analytical simulator's decisions (same
tiling planner, same bitwidth modes); these tests pin the instruction
stream's *shape* -- what executes, in what order, with what operands --
layer by layer, complementing the end-to-end agreement tests in
``test_compiler.py``.
"""

import pytest

from repro.compiler import (
    Barrier,
    GemmTile,
    LoadTile,
    Program,
    SetMode,
    StoreTile,
    lower_layer,
    lower_network,
)
from repro.compiler.lowering import BufferSplit
from repro.hw import BPVEC
from repro.nn import Dense, Network, Pool2D, rnn_workload, uniform
from repro.sim.tiling import plan_traffic


def _network(layers, batch=1, bits=(8, 8)):
    network = Network(name="unit", layers=layers, batch=batch)
    return uniform(network, *bits)


class TestLowerLayer:
    def test_compute_free_layer_lowers_to_none(self):
        pool = Pool2D("pool", 64, kernel=3, in_size=55, stride=2)
        network = Network(name="unit", layers=[pool])
        assert lower_layer(pool, network, BPVEC) is None

    def test_instruction_pattern_per_gemm(self):
        layer = Dense("fc", 64, 32)
        network = _network([layer])
        program = lower_layer(layer, network, BPVEC)
        kinds = [type(inst) for inst in program.instructions]
        assert kinds == [SetMode, LoadTile, LoadTile, GemmTile, StoreTile, Barrier]
        weights_load, acts_load = program.instructions[1:3]
        assert weights_load.buffer == "weights"
        assert acts_load.buffer == "activations"
        assert program.instructions[-1].label == "fc"

    def test_set_mode_carries_network_bitwidths(self):
        layer = Dense("fc", 16, 16)
        network = _network([layer], bits=(4, 6))
        mode = lower_layer(layer, network, BPVEC).instructions[0]
        assert (mode.bw_act, mode.bw_w) == (4, 6)

    def test_gemm_tiles_cover_layer_macs(self):
        layer = Dense("fc", 64, 32)
        network = _network([layer], batch=3)
        program = lower_layer(layer, network, BPVEC)
        assert program.total_macs == layer.macs(3)

    def test_traffic_matches_tiling_planner(self):
        layer = Dense("fc", 512, 256)
        network = _network([layer], bits=(4, 4))
        program = lower_layer(layer, network, BPVEC)
        (gemm,) = layer.gemms(1)
        plan = plan_traffic(gemm, 4, 4, BPVEC)
        assert program.total_load_bytes == plan.weight_traffic + plan.input_traffic
        assert program.total_store_bytes == plan.output_traffic

    def test_buffer_split_changes_the_plan_it_mirrors(self):
        layer = Dense("fc", 4096, 4096)
        network = _network([layer], batch=8)
        split = BufferSplit(
            weight_fraction=0.8, activation_fraction=0.1, accumulator_fraction=0.1
        )
        default = lower_layer(layer, network, BPVEC)
        skewed = lower_layer(layer, network, BPVEC, split=split)
        (gemm,) = layer.gemms(8)
        expected = plan_traffic(gemm, 8, 8, BPVEC, split=split)
        assert (
            skewed.total_load_bytes
            == expected.weight_traffic + expected.input_traffic
        )
        # The split is forwarded, not ignored: plans may differ.
        assert skewed.total_traffic_bytes != default.total_traffic_bytes

    def test_multi_gemm_layer_repeats_the_tile_pattern(self):
        network = rnn_workload()
        uniform(network, 8, 8)
        layer = network.weighted_layers[0]
        gemms = layer.gemms(network.batch)
        program = lower_layer(layer, network, BPVEC)
        # SetMode + 4 instructions per GEMM + Barrier.
        assert len(program) == 1 + 4 * len(gemms) + 1
        assert sum(
            1 for inst in program.instructions if isinstance(inst, GemmTile)
        ) == len(gemms)


class TestLowerNetwork:
    def test_concatenates_weighted_layers_in_order(self):
        first, second = Dense("fc1", 32, 32), Dense("fc2", 32, 16)
        pool = Pool2D("pool", 32, kernel=2, in_size=8, stride=2)
        network = _network([first, pool, second])
        program = lower_network(network, BPVEC)
        barriers = [
            inst.label
            for inst in program.instructions
            if isinstance(inst, Barrier)
        ]
        assert barriers == ["fc1", "fc2"]  # pool contributed nothing

    def test_totals_are_sum_of_layer_programs(self):
        layers = [Dense("fc1", 64, 64), Dense("fc2", 64, 32)]
        network = _network(layers)
        whole = lower_network(network, BPVEC)
        parts = [lower_layer(layer, network, BPVEC) for layer in layers]
        assert whole.total_macs == sum(p.total_macs for p in parts)
        assert whole.total_traffic_bytes == sum(p.total_traffic_bytes for p in parts)
        assert len(whole) == sum(len(p) for p in parts)

    def test_network_without_lowerable_layers_rejected(self):
        network = Network(
            name="unit",
            layers=[Pool2D("pool", 8, kernel=2, in_size=8, stride=2)],
        )
        with pytest.raises(ValueError, match="no lowerable layers"):
            lower_network(network, BPVEC)

    def test_lowered_program_validates(self):
        network = _network([Dense("fc", 128, 64)])
        program = lower_network(network, BPVEC)
        assert isinstance(program, Program)
        program.validate()  # executable stream: modes precede GEMMs
