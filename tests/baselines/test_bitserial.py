"""Tests for the temporal (bit-serial) Stripes/Loom baselines."""

import pytest

from repro.baselines import LOOM, STRIPES, TAXONOMY
from repro.hw import BPVEC, HBM2, TPU_LIKE
from repro.nn import lstm_workload, paper_heterogeneous, resnet50
from repro.sim import simulate_network


class TestThroughputScaling:
    def test_stripes_activation_serial(self):
        """Stripes gains only from narrow activations."""
        assert STRIPES.throughput_multiplier(8, 8) == 1
        assert STRIPES.throughput_multiplier(4, 8) == 2
        assert STRIPES.throughput_multiplier(2, 8) == 4
        assert STRIPES.throughput_multiplier(8, 2) == 1  # weights don't help

    def test_loom_fully_serial(self):
        assert LOOM.throughput_multiplier(8, 8) == 1
        assert LOOM.throughput_multiplier(4, 4) == 4
        assert LOOM.throughput_multiplier(2, 2) == 16
        assert LOOM.throughput_multiplier(8, 2) == 4

    def test_loom_matches_spatial_mode_scaling(self):
        """Temporal-both and spatial designs share the mode algebra."""
        for bw in ((8, 8), (8, 4), (4, 4), (2, 2)):
            assert LOOM.throughput_multiplier(*bw) == BPVEC.throughput_multiplier(*bw)


class TestPowerDiscipline:
    def test_serial_units_cost_more_per_mac(self):
        assert STRIPES.num_macs < TPU_LIKE.num_macs
        assert LOOM.num_macs <= STRIPES.num_macs

    def test_mac_energy_ratios(self):
        assert STRIPES.mac_energy_pj(8, 8) == pytest.approx(
            1.15 * TPU_LIKE.mac_energy_pj(8, 8)
        )
        assert LOOM.mac_energy_pj(8, 8) == pytest.approx(
            1.25 * TPU_LIKE.mac_energy_pj(8, 8)
        )

    def test_reduced_bitwidth_divides_serial_energy(self):
        assert LOOM.mac_energy_pj(4, 4) == pytest.approx(
            LOOM.mac_energy_pj(8, 8) / 4
        )


class TestTaxonomyOrdering:
    def test_taxonomy_table_complete(self):
        labels = [t[0] for t in TAXONOMY]
        assert labels == ["TPU-like", "Stripes", "Loom", "BitFusion", "BPVeC"]
        corners = {t[2] for t in TAXONOMY}
        assert ("vectorized", "flexible", "spatial") in corners

    def test_bpvec_beats_temporal_designs_on_quantized_cnn(self):
        """The vacant corner wins: vector-spatial > scalar-temporal."""
        net = paper_heterogeneous(resnet50(batch=4))
        loom = simulate_network(net, LOOM, HBM2)
        stripes = simulate_network(net, STRIPES, HBM2)
        bpvec = simulate_network(net, BPVEC, HBM2)
        assert bpvec.total_cycles < loom.total_cycles < stripes.total_cycles

    def test_bandwidth_walls_fully_flexible_styles_equally(self):
        """Loom and BPVeC hit the same DDR4 wall on the 4-bit LSTM (the
        Fig. 5 RNN story); Stripes is slower outright because
        activation-only serialization recovers just 2x of the 4x mode."""
        from repro.hw import DDR4

        net = paper_heterogeneous(lstm_workload())
        loom = simulate_network(net, LOOM, DDR4)
        bpvec = simulate_network(net, BPVEC, DDR4)
        stripes = simulate_network(net, STRIPES, DDR4)
        assert loom.total_seconds == pytest.approx(bpvec.total_seconds, rel=0.02)
        assert loom.memory_bound_fraction == 1.0
        assert stripes.total_seconds > 1.2 * bpvec.total_seconds
