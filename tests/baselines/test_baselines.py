"""Tests for the TPU-like, BitFusion, and GPU baseline models."""

import pytest

from repro.baselines import (
    BITFUSION,
    FusionUnit,
    RTX_2080_TI,
    core_power_mw,
    simulate_gpu,
    supports_bitwidth_speedup,
)
from repro.baselines.gpu import GPUSpec
from repro.nn import (
    homogeneous_8bit,
    lstm_workload,
    resnet18,
    rnn_workload,
)


class TestTPULike:
    def test_power_budget_saturated(self):
        assert core_power_mw() == pytest.approx(250.0)

    def test_no_bitwidth_speedup(self):
        assert not supports_bitwidth_speedup()


class TestFusionUnit:
    def test_sixteen_bitbricks(self):
        assert FusionUnit().num_bitbricks == 16

    def test_mode_throughputs(self):
        fu = FusionUnit()
        assert fu.multiplies_per_cycle(8, 8) == 1
        assert fu.multiplies_per_cycle(8, 4) == 2
        assert fu.multiplies_per_cycle(8, 2) == 4
        assert fu.multiplies_per_cycle(4, 4) == 4
        assert fu.multiplies_per_cycle(2, 2) == 16

    def test_bricks_per_product(self):
        fu = FusionUnit()
        assert fu.bitbricks_per_product(8, 8) == 16
        assert fu.bitbricks_per_product(2, 2) == 1

    def test_matches_platform_spec(self):
        fu = FusionUnit()
        for bw in (2, 4, 8):
            assert (
                BITFUSION.throughput_multiplier(bw, bw)
                == fu.multiplies_per_cycle(bw, bw)
            )

    def test_fig4_cost_ratios(self):
        """BitFusion sits at the 2-bit, L=1 point: ~1.4x area, >1x power."""
        fu = FusionUnit()
        assert fu.area_ratio_vs_conventional == pytest.approx(1.40, rel=0.02)
        assert fu.power_ratio_vs_conventional > 1.0


class TestGPUSpec:
    def test_table2_parameters(self):
        assert RTX_2080_TI.tensor_cores == 544
        assert RTX_2080_TI.frequency_hz == pytest.approx(1545e6)
        assert RTX_2080_TI.memory_gb == 11.0

    def test_int4_peak_doubles_int8(self):
        assert RTX_2080_TI.peak_ops(4) == pytest.approx(
            2 * RTX_2080_TI.peak_ops(8), rel=0.01
        )

    def test_unsupported_precision(self):
        with pytest.raises(ValueError):
            RTX_2080_TI.peak_ops(16)


class TestGPUSimulation:
    def test_cnn_much_more_efficient_than_rnn(self):
        """TensorRT-class behaviour: recurrent GEMV work is very inefficient."""
        cnn = simulate_gpu(homogeneous_8bit(resnet18(batch=8)))
        rnn = simulate_gpu(homogeneous_8bit(rnn_workload()))
        cnn_eff = cnn.ops_per_second / RTX_2080_TI.peak_ops(8)
        rnn_eff = rnn.ops_per_second / RTX_2080_TI.peak_ops(8)
        assert cnn_eff > 20 * rnn_eff

    def test_power_between_idle_and_tdp(self):
        for net in (resnet18(batch=8), lstm_workload()):
            res = simulate_gpu(homogeneous_8bit(net))
            assert RTX_2080_TI.idle_w < res.average_power_w < RTX_2080_TI.tdp_w

    def test_int4_faster_than_int8(self):
        net = homogeneous_8bit(resnet18(batch=8))
        assert (
            simulate_gpu(net, precision=4).total_seconds
            < simulate_gpu(net, precision=8).total_seconds
        )

    def test_derived_metrics(self):
        res = simulate_gpu(homogeneous_8bit(resnet18(batch=2)))
        assert res.ops_per_second == pytest.approx(res.total_ops / res.total_seconds)
        assert res.perf_per_watt == pytest.approx(
            res.ops_per_second / res.average_power_w
        )

    def test_empty_network_rejected(self):
        from repro.nn import Network, Pool2D

        net = Network("p", [Pool2D("p", 2, kernel=2, in_size=4)])
        with pytest.raises(ValueError):
            simulate_gpu(net)

    def test_custom_gpu(self):
        slow = GPUSpec(
            name="half",
            tensor_cores=272,
            frequency_hz=1e9,
            int8_peak_tops=100.0,
            int4_peak_tops=200.0,
            tdp_w=150.0,
            idle_w=30.0,
        )
        net = homogeneous_8bit(resnet18(batch=2))
        assert (
            simulate_gpu(net, gpu=slow).total_seconds
            > simulate_gpu(net).total_seconds
        )
