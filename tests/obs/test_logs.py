"""Unit tests for :mod:`repro.obs.logs`."""

import io
import json
import logging

import pytest

from repro.obs.logs import configure_logging, get_logger


@pytest.fixture(autouse=True)
def _clean_root():
    """Strip obs-installed handlers so tests never leak configuration."""
    yield
    root = logging.getLogger("repro")
    root.handlers = [
        h
        for h in root.handlers
        if not getattr(h, "_repro_obs_handler", False)
    ]
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_names_land_under_the_repro_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("repro.serve.fleet").name == "repro.serve.fleet"
        assert get_logger("serve.fleet").name == "repro.serve.fleet"


class TestConfigureLogging:
    def test_json_lines_carry_context_fields(self):
        stream = io.StringIO()
        configure_logging("info", json_lines=True, stream=stream)
        get_logger("serve.test").info(
            "accepted job", extra={"job": "j1", "trace": "abcd"}
        )
        entry = json.loads(stream.getvalue().strip())
        assert entry["message"] == "accepted job"
        assert entry["level"] == "info"
        assert entry["logger"] == "repro.serve.test"
        assert entry["job"] == "j1"
        assert entry["trace"] == "abcd"
        assert "ts" in entry

    def test_level_threshold_applies(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        logger = get_logger("serve.test")
        logger.info("dropped")
        logger.warning("kept")
        output = stream.getvalue()
        assert "dropped" not in output
        assert "kept" in output

    def test_reconfigure_replaces_only_its_own_handler(self):
        root = logging.getLogger("repro")
        foreign = logging.NullHandler()
        root.addHandler(foreign)
        try:
            configure_logging("info", stream=io.StringIO())
            configure_logging("debug", stream=io.StringIO())
            obs = [
                h
                for h in root.handlers
                if getattr(h, "_repro_obs_handler", False)
            ]
            assert len(obs) == 1
            assert foreign in root.handlers
        finally:
            root.removeHandler(foreign)

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("shout")

    def test_exception_rendered_into_json(self):
        stream = io.StringIO()
        configure_logging("info", json_lines=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("serve.test").exception("chunk failed")
        entry = json.loads(stream.getvalue().strip())
        assert entry["level"] == "error"
        assert "RuntimeError: boom" in entry["exc"]
