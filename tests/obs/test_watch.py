"""Unit tests for the ``repro watch`` snapshot/render layers."""

import pytest

from repro.obs.watch import parse_prometheus_text, render_text, watch


SCRAPE = """\
# HELP repro_eval_points_total Sweep points resolved, by tier.
# TYPE repro_eval_points_total counter
repro_eval_points_total{tier="evaluated"} 7
repro_eval_points_total{tier="memo"} 3
repro_record_cache_hits_total 9
repro_record_cache_misses_total 1
repro_job_phase_seconds_bucket{kind="sweep",phase="evaluate",le="+Inf"} 2
repro_job_phase_seconds_sum{kind="sweep",phase="evaluate"} 0.5
repro_job_phase_seconds_count{kind="sweep",phase="evaluate"} 2
this line does not parse
"""


class TestParsePrometheusText:
    def test_samples_with_and_without_labels(self):
        samples = parse_prometheus_text(SCRAPE)
        points = {
            s["labels"]["tier"]: s["value"]
            for s in samples["repro_eval_points_total"]
        }
        assert points == {"evaluated": 7.0, "memo": 3.0}
        (hits,) = samples["repro_record_cache_hits_total"]
        assert hits["labels"] == {} and hits["value"] == 9.0

    def test_histogram_series_keep_suffixed_names(self):
        samples = parse_prometheus_text(SCRAPE)
        assert "repro_job_phase_seconds_sum" in samples
        (bucket,) = samples["repro_job_phase_seconds_bucket"]
        assert bucket["labels"]["le"] == "+Inf"

    def test_comments_and_garbage_are_skipped(self):
        samples = parse_prometheus_text(SCRAPE)
        assert "this" not in samples

    def test_escaped_label_values_round_trip(self):
        text = 'm{path="a\\"b\\\\c\\nd"} 1\n'
        (sample,) = parse_prometheus_text(text)["m"]
        assert sample["labels"]["path"] == 'a"b\\c\nd'


class TestRenderText:
    def test_renders_a_full_snapshot(self):
        snapshot = {
            "url": "http://127.0.0.1:8000",
            "polled_at": 1000.0,
            "ready": True,
            "stats": {
                "eval_version": 1,
                "store": {"backend": "sqlite", "records": 12},
                "memo_records": 4,
                "record_cache": {"records": 3, "capacity": 100},
                "jobs": {"running": 1, "queued": 0, "total": 2},
                "fleet": {
                    "workers": {"registered": 2, "alive": 1},
                    "chunks": {
                        "total": 4,
                        "completed": 2,
                        "leased": 1,
                        "pending": 1,
                    },
                    "requeued": 1,
                },
            },
            "jobs": [
                {
                    "job": "j1",
                    "kind": "sweep",
                    "state": "running",
                    "submitted_at": 999.0,
                    "progress": {"points": 10, "completed": 5},
                    "duration": 1.5,
                    "timings": {
                        "phases": [
                            {"phase": "evaluate", "seconds": 1.0, "open": True}
                        ]
                    },
                }
            ],
            "workers": [
                {
                    "name": "box-a",
                    "alive": True,
                    "leases": 1,
                    "chunks_done": 2,
                    "last_seen": 998.0,
                    "metrics": {"points_total": 40, "eval_seconds_sum": 1.2},
                }
            ],
            "metrics": {
                "http_requests": 15,
                "eval_points": {"evaluated": 7, "store": 0, "memo": 3},
                "record_cache_hit_rate": 0.9,
                "journal_degraded_writes": 0,
            },
            "frontiers": {"j1": 3},
        }
        text = render_text(snapshot)
        assert "[ready]" in text
        assert "sqlite 12 records" in text
        assert "(90% hit)" in text
        assert "7 evaluated" in text
        assert "evaluate" in text  # the running job's open phase
        assert "box-a" in text
        assert "1 alive / 2 registered" in text
        assert "2/4 done" in text

    def test_degrades_on_missing_fields(self):
        text = render_text({"url": "http://x", "ready": None})
        assert "[?]" in text  # pre-obs server: readiness unknown
        assert "jobs (0 running" in text


class TestWatchEntry:
    def test_format_json_requires_once(self):
        with pytest.raises(ValueError, match="requires --once"):
            watch("http://127.0.0.1:1", fmt="json", once=False)
