"""Unit tests for :mod:`repro.obs.trace`."""

import pytest

from repro.obs.trace import Trace, new_trace_id


class TestTrace:
    def test_phases_are_contiguous_and_non_overlapping(self):
        trace = Trace("validate")
        trace.mark("queue-wait")
        trace.mark("evaluate")
        trace.end()
        phases = trace.phases()
        assert [p["phase"] for p in phases] == [
            "validate",
            "queue-wait",
            "evaluate",
        ]
        assert all(not p["open"] for p in phases)
        assert all(p["seconds"] >= 0 for p in phases)
        # Contiguity: the phase spans sum to the trace total exactly --
        # mark() closes and opens at one instant, so no gap can exist.
        total = sum(p["seconds"] for p in phases)
        assert total == pytest.approx(trace.total_seconds())

    def test_mark_returns_the_closed_sample(self):
        trace = Trace("validate")
        closed = trace.mark("evaluate")
        assert closed is not None
        name, seconds = closed
        assert name == "validate"
        assert seconds >= 0

    def test_mark_without_open_phase_returns_none(self):
        trace = Trace()
        assert trace.mark("first") is None  # nothing was open yet
        closed = trace.mark("second")
        assert closed is not None and closed[0] == "first"
        assert [p["phase"] for p in trace.phases()] == ["first", "second"]

    def test_end_is_idempotent_and_seals_the_trace(self):
        trace = Trace("only")
        first = trace.end()
        assert first is not None and first[0] == "only"
        assert trace.complete
        assert trace.end() is None
        # A late duplicate transition must not reopen a sealed trace.
        assert trace.mark("zombie") is None
        assert [p["phase"] for p in trace.phases()] == ["only"]

    def test_open_phase_reports_elapsed_so_far(self):
        trace = Trace("running")
        (phase,) = trace.phases()
        assert phase["open"] and phase["seconds"] >= 0
        assert not trace.complete

    def test_summary_shape(self):
        trace = Trace("a", trace_id="cafe0123")
        trace.end()
        summary = trace.summary()
        assert summary["trace_id"] == "cafe0123"
        assert summary["complete"] is True
        assert summary["total_seconds"] >= 0
        assert summary["phases"][0]["phase"] == "a"

    def test_trace_ids_are_short_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)
