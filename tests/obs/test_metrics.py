"""Unit tests for :mod:`repro.obs.metrics`.

The registry backs ``GET /metrics``, the ``/stats`` phase summaries,
and the worker-heartbeat snapshots, so its exposition format, bucket
arithmetic, and thread safety are pinned here rather than discovered
through endpoint tests.
"""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_inc_accumulates_per_label_set(self, registry):
        acks = registry.counter("acks_total", "Acks.", labelnames=("result",))
        acks.inc(result="ok")
        acks.inc(2, result="ok")
        acks.inc(result="failed")
        snap = registry.snapshot()["counters"]["acks_total"]
        values = {tuple(s["labels"].items()): s["value"] for s in snap}
        assert values[(("result", "ok"),)] == 3
        assert values[(("result", "failed"),)] == 1

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("ups_total", "Only up.")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("l_total", "L.", labelnames=("a",))
        with pytest.raises(ValueError, match="wants labels"):
            counter.inc(b="x")
        with pytest.raises(ValueError, match="wants labels"):
            counter.inc()

    def test_concurrent_increments_lose_nothing(self, registry):
        counter = registry.counter("spins_total", "Contended.")
        per_thread, threads = 2000, 8

        def spin():
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=spin) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        (sample,) = registry.snapshot()["counters"]["spins_total"]
        assert sample["value"] == per_thread * threads


class TestGauges:
    def test_set_replaces_inc_adds(self, registry):
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(5)
        gauge.set(3)
        gauge.inc(2)
        (sample,) = registry.snapshot()["gauges"]["depth"]
        assert sample["value"] == 5

    def test_redeclaring_as_other_kind_raises(self, registry):
        registry.gauge("thing", "A gauge.")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("thing", "Now a counter?")


class TestHistograms:
    def test_bucket_boundaries_are_le_inclusive(self, registry):
        histogram = registry.histogram(
            "lat_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
        )
        # Exactly on a bound lands in that bound's bucket (le= means <=).
        for value in (0.01, 0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.01"} 1' in text
        assert 'lat_seconds_bucket{le="0.1"} 3' in text  # cumulative
        assert 'lat_seconds_bucket{le="1"} 4' in text
        assert 'lat_seconds_bucket{le="+Inf"} 5' in text
        assert "lat_seconds_count 5" in text

    def test_sum_and_count_track_observations(self, registry):
        histogram = registry.histogram("h_seconds", "H.", buckets=(1.0,))
        histogram.observe(0.25)
        histogram.observe(0.5)
        (sample,) = registry.snapshot()["histograms"]["h_seconds"]
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(0.75)

    def test_default_buckets_cover_cache_hits_to_fleet_chunks(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRender:
    def test_help_type_and_sorted_families(self, registry):
        registry.counter("b_total", "Second.").inc()
        registry.gauge("a_gauge", "First.").set(1)
        text = registry.render()
        assert "# HELP a_gauge First." in text
        assert "# TYPE a_gauge gauge" in text
        assert "# TYPE b_total counter" in text
        assert text.index("a_gauge") < text.index("b_total")
        assert text.endswith("\n")

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("esc_total", "E.", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        text = registry.render()
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_integral_values_render_bare(self, registry):
        registry.counter("n_total", "N.").inc(3)
        registry.gauge("f_gauge", "F.").set(2.5)
        text = registry.render()
        assert "n_total 3\n" in text
        assert "f_gauge 2.5" in text


class TestLifecycle:
    def test_disabled_registry_mutations_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", "C.")
        histogram = registry.histogram("h_seconds", "H.")
        counter.inc()
        histogram.observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}
        registry.set_enabled(True)
        counter.inc()
        assert registry.snapshot()["counters"]["c_total"][0]["value"] == 1

    def test_reset_clears_values_keeps_families(self, registry):
        counter = registry.counter("c_total", "C.")
        counter.inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        counter.inc(5)  # family survived the reset
        assert registry.snapshot()["counters"]["c_total"][0]["value"] == 5

    def test_keyed_collector_replaces_previous(self, registry):
        calls = []
        registry.add_collector(lambda r: calls.append("old"), key="svc")
        registry.add_collector(lambda r: calls.append("new"), key="svc")
        registry.render()
        assert calls == ["new"]

    def test_collector_exception_does_not_fail_scrape(self, registry):
        def boom(_registry):
            raise RuntimeError("collector race")

        registry.add_collector(boom, key="bad")
        registry.counter("ok_total", "Survives.").inc()
        assert "ok_total 1" in registry.render()

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
