"""Tests for quantized inference on the composed (CVU) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import MLP, QuantizedLinear, make_two_spirals


@pytest.fixture(scope="module")
def trained():
    x, y = make_two_spirals(240, seed=3)
    mlp = MLP([2, 24, 24, 2], seed=4)
    mlp.train(x, y, epochs=300, lr=0.3)
    return mlp, x, y


class TestQuantizedLinear:
    def test_float_backend_matches_matmul(self):
        rng = np.random.default_rng(0)
        layer = QuantizedLinear(weight=rng.normal(size=(8, 4)), bias=rng.normal(size=4))
        x = rng.normal(size=(3, 8))
        np.testing.assert_allclose(
            layer.forward(x, backend="float"), x @ layer.weight + layer.bias
        )

    def test_composed_equals_integer_bit_exactly(self):
        """The core hardware invariant, end to end through a layer."""
        rng = np.random.default_rng(1)
        layer = QuantizedLinear(
            weight=rng.normal(size=(16, 8)),
            bias=np.zeros(8),
            bits_weights=4,
            bits_activations=4,
        )
        x = rng.normal(size=(5, 16))
        np.testing.assert_array_equal(
            layer.forward(x, backend="integer"), layer.forward(x, backend="composed")
        )

    def test_int8_close_to_float(self):
        rng = np.random.default_rng(2)
        layer = QuantizedLinear(weight=rng.normal(size=(32, 16)), bias=np.zeros(16))
        x = rng.normal(size=(4, 32))
        ref = layer.forward(x, backend="float")
        got = layer.forward(x, backend="composed")
        assert np.max(np.abs(ref - got)) < 0.05 * np.max(np.abs(ref))

    def test_unknown_backend_rejected(self):
        layer = QuantizedLinear(weight=np.eye(2), bias=np.zeros(2))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2)), backend="fpga")

    def test_weight_quantization_cached(self):
        layer = QuantizedLinear(weight=np.eye(4), bias=np.zeros(4))
        assert layer.quantize_weights() is layer.quantize_weights()


class TestMLP:
    def test_training_converges(self, trained):
        mlp, x, y = trained
        assert mlp.accuracy(x, y, backend="float") > 0.9

    def test_8bit_preserves_accuracy(self, trained):
        """The paper's premise: 8-bit quantization is accuracy-neutral."""
        mlp, x, y = trained
        fp = mlp.accuracy(x, y, backend="float")
        q8 = mlp.accuracy(
            x, y, backend="composed", bits_weights=8, bits_activations=8
        )
        assert abs(fp - q8) < 0.02

    def test_4bit_accuracy_degrades_gracefully(self, trained):
        mlp, x, y = trained
        q4 = mlp.accuracy(
            x, y, backend="composed", bits_weights=4, bits_activations=4
        )
        assert q4 > 0.8

    def test_composed_and_integer_agree_on_predictions(self, trained):
        mlp, x, _ = trained
        a = mlp.forward(x, backend="integer", bits_weights=4, bits_activations=4)
        b = mlp.forward(x, backend="composed", bits_weights=4, bits_activations=4)
        np.testing.assert_array_equal(a, b)

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_spirals_shapes(self):
        x, y = make_two_spirals(100, seed=0)
        assert x.shape == (100, 2)
        assert set(np.unique(y)) == {0, 1}
        with pytest.raises(ValueError):
            make_two_spirals(1)


@settings(max_examples=25, deadline=None)
@given(
    bits_w=st.integers(2, 8),
    bits_a=st.integers(2, 8),
    seed=st.integers(0, 2**31),
)
def test_layer_composed_integer_equivalence_property(bits_w, bits_a, seed):
    rng = np.random.default_rng(seed)
    layer = QuantizedLinear(
        weight=rng.normal(size=(12, 6)),
        bias=rng.normal(size=6),
        bits_weights=bits_w,
        bits_activations=bits_a,
    )
    x = rng.normal(size=(4, 12))
    np.testing.assert_array_equal(
        layer.forward(x, backend="integer"), layer.forward(x, backend="composed")
    )
