"""Tests for linear quantization and the QTensor container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import LinearQuantizer, QTensor, quantization_error


class TestLinearQuantizer:
    def test_symmetric_zero_point_is_zero(self):
        q = LinearQuantizer(bits=8, signed=True, symmetric=True)
        qt = q(np.array([-1.0, 0.5, 1.0]))
        assert qt.zero_point == 0
        assert qt.values.max() == 127

    def test_asymmetric_covers_full_range(self):
        q = LinearQuantizer(bits=8, signed=False, symmetric=False)
        qt = q(np.array([0.0, 10.0]))
        assert qt.values.min() == 0
        assert qt.values.max() == 255

    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 1000)
        q = LinearQuantizer(bits=8, signed=True, symmetric=True)
        qt = q(x)
        assert np.max(np.abs(x - qt.dequantize())) <= qt.scale / 2 + 1e-12

    def test_lower_bits_higher_error(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 1000)
        errors = []
        for bits in (8, 4, 2):
            qt = LinearQuantizer(bits=bits, signed=True, symmetric=True)(x)
            errors.append(quantization_error(x, qt))
        assert errors[0] < errors[1] < errors[2]

    def test_constant_tensor(self):
        qt = LinearQuantizer(bits=4, signed=False, symmetric=False)(np.full(5, 3.0))
        assert np.allclose(qt.dequantize(), 3.0, atol=qt.scale)

    def test_all_zero_tensor(self):
        qt = LinearQuantizer(bits=4, signed=True, symmetric=True)(np.zeros(8))
        assert np.all(qt.values == 0)
        np.testing.assert_allclose(qt.dequantize(), 0.0)

    def test_quantize_before_fit_rejected(self):
        q = LinearQuantizer(bits=8)
        with pytest.raises(RuntimeError):
            q.quantize(np.array([1.0]))

    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError):
            LinearQuantizer(bits=8).fit(np.array([]))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LinearQuantizer(bits=0)
        with pytest.raises(ValueError):
            LinearQuantizer(bits=32)


class TestQTensor:
    def test_codes_fit_declared_bitwidth(self):
        with pytest.raises(ValueError):
            QTensor(np.array([300]), scale=1.0, zero_point=0, bits=8, signed=False)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            QTensor(np.array([0]), scale=0.0, zero_point=0, bits=8, signed=True)

    def test_centered_subtracts_zero_point(self):
        qt = QTensor(np.array([5, 10]), scale=0.1, zero_point=5, bits=8, signed=False)
        np.testing.assert_array_equal(qt.centered(), [0, 5])
        assert not qt.is_symmetric

    def test_storage_bytes_sub_byte(self):
        qt = QTensor(np.zeros(10, dtype=np.int64), 1.0, 0, bits=4, signed=True)
        assert qt.storage_bytes() == 5

    def test_dequantize_formula(self):
        qt = QTensor(np.array([7]), scale=0.5, zero_point=3, bits=8, signed=False)
        assert qt.dequantize()[0] == pytest.approx((7 - 3) * 0.5)


@settings(max_examples=80, deadline=None)
@given(
    bits=st.integers(2, 8),
    signed=st.booleans(),
    symmetric=st.booleans(),
    seed=st.integers(0, 2**31),
)
def test_quantizer_codes_always_in_range(bits, signed, symmetric, seed):
    if symmetric and not signed and bits < 2:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 10, 200)
    q = LinearQuantizer(bits=bits, signed=signed, symmetric=symmetric)
    qt = q(x)
    lo, hi = q.code_range
    assert qt.values.min() >= lo
    assert qt.values.max() <= hi
