"""Tests for quantized convolution and pooling on the composed arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import QuantizedConv2D, avg_pool2d, im2col, max_pool2d


def _reference_conv(x, weight, bias, stride, padding):
    """Direct-loop NHWC convolution used as the golden reference."""
    n, h, w, _ = x.shape
    k, _, _, c_out = weight.shape
    xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    out = np.zeros((n, oh, ow, c_out))
    for i in range(oh):
        for j in range(ow):
            window = xp[:, i * stride : i * stride + k, j * stride : j * stride + k, :]
            out[:, i, j, :] = np.tensordot(window, weight, axes=([1, 2, 3], [0, 1, 2]))
    return out + bias


class TestIm2col:
    def test_shape(self):
        x = np.arange(2 * 5 * 5 * 3).reshape(2, 5, 5, 3)
        cols = im2col(x, kernel=3, stride=1, padding=0)
        assert cols.shape == (2 * 3 * 3, 3 * 3 * 3)

    def test_identity_kernel1(self):
        x = np.arange(1 * 2 * 2 * 4).reshape(1, 2, 2, 4)
        cols = im2col(x, kernel=1)
        np.testing.assert_array_equal(cols, x.reshape(4, 4))

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((2, 2, 2)), kernel=1)
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 2, 2, 1)), kernel=3)
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 4, 4, 1)), kernel=2, stride=0)


class TestQuantizedConv2D:
    @pytest.fixture
    def conv(self):
        rng = np.random.default_rng(0)
        return QuantizedConv2D(
            weight=rng.normal(0, 0.5, (3, 3, 4, 8)),
            bias=rng.normal(0, 0.1, 8),
            stride=1,
            padding=1,
        )

    def test_float_matches_direct_convolution(self, conv):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 6, 6, 4))
        got = conv.forward(x, backend="float")
        ref = _reference_conv(x, conv.weight, conv.bias, 1, 1)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_composed_equals_integer(self, conv):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 6, 6, 4))
        conv.bits_weights = conv.bits_activations = 4
        conv._wq = None
        np.testing.assert_array_equal(
            conv.forward(x, backend="integer"), conv.forward(x, backend="composed")
        )

    def test_int8_close_to_float(self, conv):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 6, 6, 4))
        ref = conv.forward(x, backend="float")
        got = conv.forward(x, backend="composed")
        assert np.max(np.abs(ref - got)) < 0.05 * np.max(np.abs(ref))

    def test_strided_output_shape(self):
        conv = QuantizedConv2D(
            weight=np.zeros((3, 3, 2, 5)), bias=np.zeros(5), stride=2, padding=1
        )
        out = conv.forward(np.zeros((1, 8, 8, 2)), backend="float")
        assert out.shape == (1, 4, 4, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantizedConv2D(weight=np.zeros((3, 3, 2)), bias=np.zeros(2))
        with pytest.raises(ValueError):
            QuantizedConv2D(weight=np.zeros((3, 5, 2, 2)), bias=np.zeros(2))
        with pytest.raises(ValueError):
            QuantizedConv2D(weight=np.zeros((3, 3, 2, 2)), bias=np.zeros(3))
        conv = QuantizedConv2D(weight=np.zeros((1, 1, 1, 1)), bias=np.zeros(1))
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 2, 1)), backend="tpu")


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = max_pool2d(x, kernel=2)
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = avg_pool2d(x, kernel=2)
        np.testing.assert_array_equal(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_stride_defaults_to_kernel(self):
        x = np.zeros((1, 6, 6, 2))
        assert max_pool2d(x, kernel=3).shape == (1, 2, 2, 2)

    def test_bad_input(self):
        with pytest.raises(ValueError):
            max_pool2d(np.zeros((4, 4)), kernel=2)
        with pytest.raises(ValueError):
            max_pool2d(np.zeros((1, 2, 2, 1)), kernel=4)


@settings(max_examples=15, deadline=None)
@given(
    bits=st.integers(2, 8),
    kernel=st.sampled_from([1, 3]),
    seed=st.integers(0, 2**31),
)
def test_conv_composed_integer_equivalence_property(bits, kernel, seed):
    rng = np.random.default_rng(seed)
    conv = QuantizedConv2D(
        weight=rng.normal(size=(kernel, kernel, 3, 4)),
        bias=rng.normal(size=4),
        padding=kernel // 2,
        bits_weights=bits,
        bits_activations=bits,
    )
    x = rng.normal(size=(1, 5, 5, 3))
    np.testing.assert_array_equal(
        conv.forward(x, backend="integer"), conv.forward(x, backend="composed")
    )
