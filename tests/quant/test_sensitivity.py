"""Tests for quantization sensitivity analysis and bitwidth search."""

import numpy as np
import pytest

from repro.quant import (
    MLP,
    assign_bitwidths,
    average_bitwidth,
    footprint_reduction,
    layer_sensitivity,
    make_two_spirals,
)


@pytest.fixture(scope="module")
def trained():
    x, y = make_two_spirals(300, seed=11)
    mlp = MLP([2, 32, 32, 2], seed=12)
    mlp.train(x, y, epochs=400, lr=0.3)
    return mlp, x, y


class TestPerLayerBitwidths:
    def test_list_forward_matches_uniform(self, trained):
        mlp, x, _ = trained
        uniform = mlp.forward(x, backend="integer", bits_weights=4, bits_activations=4)
        listed = mlp.forward(
            x,
            backend="integer",
            bits_weights=[4, 4, 4],
            bits_activations=[4, 4, 4],
        )
        np.testing.assert_array_equal(uniform, listed)

    def test_wrong_length_rejected(self, trained):
        mlp, x, _ = trained
        with pytest.raises(ValueError):
            mlp.forward(x, bits_weights=[8, 8])


class TestLayerSensitivity:
    def test_scan_shape(self, trained):
        mlp, x, y = trained
        records = layer_sensitivity(mlp, x, y, bits_candidates=(8, 2))
        assert len(records) == len(mlp.layers) * 2
        assert {r.layer_index for r in records} == {0, 1, 2}

    def test_8bit_is_accuracy_neutral(self, trained):
        mlp, x, y = trained
        for r in layer_sensitivity(mlp, x, y, bits_candidates=(8,)):
            assert abs(r.accuracy_drop) < 0.03

    def test_2bit_hurts_more_than_8bit(self, trained):
        mlp, x, y = trained
        records = layer_sensitivity(mlp, x, y, bits_candidates=(8, 2))
        drop8 = np.mean([r.accuracy_drop for r in records if r.bits == 8])
        drop2 = np.mean([r.accuracy_drop for r in records if r.bits == 2])
        assert drop2 > drop8

    def test_empty_candidates_rejected(self, trained):
        mlp, x, y = trained
        with pytest.raises(ValueError):
            layer_sensitivity(mlp, x, y, bits_candidates=())


class TestBitwidthSearch:
    def test_assignment_respects_accuracy_floor(self, trained):
        mlp, x, y = trained
        result = assign_bitwidths(mlp, x, y, max_drop=0.03)
        assert result.accuracy >= result.float_accuracy - 0.03 - 1e-9

    def test_search_narrows_something(self, trained):
        """With a generous floor, at least one layer should leave 8-bit."""
        mlp, x, y = trained
        result = assign_bitwidths(mlp, x, y, max_drop=0.10)
        assert any(b < 8 for b in result.bits_per_layer)
        assert result.steps >= 1

    def test_zero_budget_keeps_everything_wide_or_safe(self, trained):
        mlp, x, y = trained
        result = assign_bitwidths(mlp, x, y, max_drop=0.0)
        assert result.accuracy >= result.float_accuracy - 1e-9

    def test_validation(self, trained):
        mlp, x, y = trained
        with pytest.raises(ValueError):
            assign_bitwidths(mlp, x, y, max_drop=-0.1)
        with pytest.raises(ValueError):
            assign_bitwidths(mlp, x, y, ladder=(4, 8))
        with pytest.raises(ValueError):
            assign_bitwidths(mlp, x, y, ladder=(8,))


class TestMetrics:
    def test_average_bitwidth_uniform(self, trained):
        mlp, _, _ = trained
        assert average_bitwidth(mlp, (8, 8, 8)) == 8.0
        assert average_bitwidth(mlp, (4, 4, 4)) == 4.0

    def test_average_is_parameter_weighted(self, trained):
        mlp, _, _ = trained
        # Middle layer (32x32) dominates the 2-input first layer.
        avg = average_bitwidth(mlp, (8, 2, 8))
        assert avg < 6.0

    def test_footprint_reduction(self, trained):
        mlp, _, _ = trained
        assert footprint_reduction(mlp, (4, 4, 4)) == pytest.approx(2.0)

    def test_length_validation(self, trained):
        mlp, _, _ = trained
        with pytest.raises(ValueError):
            average_bitwidth(mlp, (8, 8))
